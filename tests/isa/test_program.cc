/** @file Unit tests for Program: group derivation, data, validation. */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/program.hh"

namespace
{

using namespace ff::isa;
using ff::Addr;

Program
tinyValid()
{
    ProgramBuilder b("tiny", /*auto_stop=*/true);
    b.movi(intReg(1), 5);
    b.addi(intReg(2), intReg(1), 1);
    b.halt();
    return b.finalize();
}

TEST(Program, GroupDerivationFromStopBits)
{
    ProgramBuilder b("groups", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop(); // group 0: insts 0-1
    b.movi(intReg(3), 3);
    b.stop(); // group 1: inst 2
    b.halt(); // group 2: inst 3 (finalize sets the stop bit)
    Program p = b.finalize();

    EXPECT_EQ(p.groupStart(0), 0u);
    EXPECT_EQ(p.groupStart(1), 0u);
    EXPECT_EQ(p.groupEnd(1), 2u);
    EXPECT_EQ(p.groupStart(2), 2u);
    EXPECT_EQ(p.groupEnd(2), 3u);
    EXPECT_TRUE(p.isGroupLeader(0));
    EXPECT_FALSE(p.isGroupLeader(1));
    EXPECT_TRUE(p.isGroupLeader(2));
    EXPECT_TRUE(p.isGroupLeader(3));
    EXPECT_EQ(p.nextGroup(0), 2u);
}

TEST(Program, InstAddrSpacing)
{
    EXPECT_EQ(Program::instAddr(0), Program::kTextBase);
    EXPECT_EQ(Program::instAddr(2),
              Program::kTextBase + 2 * Program::kBytesPerInst);
}

TEST(Program, DataImagePokes)
{
    Program p = tinyValid();
    p.poke64(0x1000, 0x1122334455667788ULL);
    p.poke32(0x2000, 0xAABBCCDDu);
    p.pokeDouble(0x3000, 1.5);

    const DataImage &img = p.dataImage();
    EXPECT_EQ(img.read(0x1000), 0x88);
    EXPECT_EQ(img.read(0x1007), 0x11);
    EXPECT_EQ(img.read(0x2003), 0xAA);
    EXPECT_EQ(img.read(0x4000), 0x00); // untouched reads zero
}

TEST(Program, DataImageCrossPageWrite)
{
    Program p = tinyValid();
    const Addr boundary = DataImage::kPageBytes - 4;
    p.poke64(boundary, 0x0807060504030201ULL);
    EXPECT_EQ(p.dataImage().read(boundary), 0x01);
    EXPECT_EQ(p.dataImage().read(boundary + 7), 0x08);
    EXPECT_EQ(p.dataImage().pages().size(), 2u);
}

TEST(Program, SequentializeFlattensGroups)
{
    ProgramBuilder b("seq", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop();
    b.label("l");
    b.br("l");
    b.halt();
    Program grouped = b.finalize();
    grouped.poke64(0x100, 7);

    const Program flat = sequentialize(grouped);
    for (ff::InstIdx i = 0; i < flat.size(); ++i) {
        EXPECT_TRUE(flat.inst(i).stop);
        EXPECT_TRUE(flat.isGroupLeader(i));
    }
    // Branch targets and the data image survive.
    EXPECT_EQ(flat.inst(2).imm, 2);
    EXPECT_EQ(flat.dataImage().read(0x100), 7);
    EXPECT_EQ(flat.validate(), "");
}

TEST(ProgramValidate, AcceptsWellFormed)
{
    EXPECT_EQ(tinyValid().validate(), "");
}

TEST(ProgramValidate, RejectsEmpty)
{
    Program p;
    EXPECT_NE(p.validate(), "");
}

TEST(ProgramValidate, RejectsMissingHalt)
{
    ProgramBuilder b("nohalt");
    b.movi(intReg(1), 1);
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("halt"), std::string::npos);
}

TEST(ProgramValidate, RejectsBranchTargetInsideGroup)
{
    // A branch into the middle of a multi-instruction group.
    std::vector<Instruction> insts;
    Instruction movi1;
    movi1.op = Opcode::kMovi;
    movi1.dst = intReg(1);
    Instruction movi2 = movi1;
    movi2.dst = intReg(2);
    movi2.stop = true;
    Instruction br;
    br.op = Opcode::kBr;
    br.imm = 1; // not a leader: inst 1 is inside group [0,1]
    br.stop = true;
    Instruction halt;
    halt.op = Opcode::kHalt;
    halt.stop = true;
    insts = {movi1, movi2, br, halt};
    Program p("badbr", insts);
    EXPECT_NE(p.validate().find("not an issue-group leader"),
              std::string::npos);
}

TEST(ProgramValidate, RejectsBranchWithoutStop)
{
    std::vector<Instruction> insts;
    Instruction br;
    br.op = Opcode::kBr;
    br.imm = 0;
    br.stop = false; // branch must end its group
    Instruction halt;
    halt.op = Opcode::kHalt;
    halt.stop = true;
    insts = {br, halt};
    Program p("brnostop", insts);
    EXPECT_NE(p.validate().find("final slot"), std::string::npos);
}

TEST(ProgramValidate, RejectsIntraGroupRaw)
{
    ProgramBuilder b("raw", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.addi(intReg(2), intReg(1), 1); // reads r1 written in same group
    b.stop();
    b.halt();
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("intra-group RAW"), std::string::npos);
}

TEST(ProgramValidate, RejectsIntraGroupWaw)
{
    ProgramBuilder b("waw", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(1), 2);
    b.stop();
    b.halt();
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("intra-group WAW"), std::string::npos);
}

TEST(ProgramValidate, AllowsIntraGroupWar)
{
    // Write-after-read in one group is legal EPIC semantics.
    ProgramBuilder b("war", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.stop();
    b.addi(intReg(2), intReg(1), 0); // read r1
    b.movi(intReg(1), 9);            // write r1, same group
    b.stop();
    b.halt();
    EXPECT_EQ(b.finalize().validate(), "");
}

TEST(ProgramValidate, RejectsHardwiredWrite)
{
    ProgramBuilder b("hw");
    b.movi(intReg(0), 1);
    b.halt();
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("hardwired"), std::string::npos);
}

TEST(ProgramValidate, RejectsOversubscribedGroup)
{
    ProgramBuilder b("wide", /*auto_stop=*/false);
    // Six independent ALU writes in one group exceeds 5 ALU units.
    for (unsigned i = 1; i <= 6; ++i)
        b.movi(intReg(i), i);
    b.stop();
    b.halt();
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("oversubscribes"), std::string::npos);
}

TEST(ProgramValidate, RejectsMemOpAfterStoreInGroup)
{
    ProgramBuilder b("memorder", /*auto_stop=*/false);
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 7);
    b.stop();
    b.st8(intReg(1), 0, intReg(2));
    b.ld8(intReg(3), intReg(1), 64); // load after store, same group
    b.stop();
    b.halt();
    Program p = b.finalize();
    EXPECT_NE(p.validate().find("follows a store"), std::string::npos);
}

TEST(ProgramValidate, RejectsNonPredQualifier)
{
    std::vector<Instruction> insts;
    Instruction add;
    add.op = Opcode::kAdd;
    add.dst = intReg(1);
    add.src1 = intReg(2);
    add.src2 = intReg(3);
    add.qpred = intReg(4); // wrong class
    add.stop = true;
    Instruction halt;
    halt.op = Opcode::kHalt;
    halt.stop = true;
    insts = {add, halt};
    Program p("badq", insts);
    EXPECT_NE(p.validate().find("not a "), std::string::npos);
}

} // namespace
