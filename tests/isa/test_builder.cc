/** @file Unit tests for the ProgramBuilder assembler. */

#include <gtest/gtest.h>

#include "isa/builder.hh"

namespace
{

using namespace ff::isa;

TEST(Builder, EmitsOpcodesAndOperands)
{
    ProgramBuilder b("ops");
    b.add(intReg(1), intReg(2), intReg(3));
    b.addi(intReg(4), intReg(5), -7);
    b.ld8(intReg(6), intReg(7), 16);
    b.st4(intReg(8), -4, intReg(9));
    b.cmp(CmpCond::kLt, predReg(1), predReg(2), intReg(1), intReg(4));
    b.halt();
    Program p = b.finalize();

    EXPECT_EQ(p.inst(0).op, Opcode::kAdd);
    EXPECT_EQ(p.inst(0).dst, intReg(1));
    EXPECT_EQ(p.inst(0).src1, intReg(2));
    EXPECT_EQ(p.inst(0).src2, intReg(3));
    EXPECT_FALSE(p.inst(0).src2IsImm);

    EXPECT_EQ(p.inst(1).op, Opcode::kAdd);
    EXPECT_TRUE(p.inst(1).src2IsImm);
    EXPECT_EQ(p.inst(1).imm, -7);

    EXPECT_EQ(p.inst(2).op, Opcode::kLd8);
    EXPECT_EQ(p.inst(2).imm, 16);
    EXPECT_EQ(p.inst(2).dst, intReg(6));

    EXPECT_EQ(p.inst(3).op, Opcode::kSt4);
    EXPECT_EQ(p.inst(3).src1, intReg(8));
    EXPECT_EQ(p.inst(3).src2, intReg(9));
    EXPECT_EQ(p.inst(3).imm, -4);

    EXPECT_EQ(p.inst(4).op, Opcode::kCmp);
    EXPECT_EQ(p.inst(4).cond, CmpCond::kLt);
    EXPECT_EQ(p.inst(4).dst, predReg(1));
    EXPECT_EQ(p.inst(4).dst2, predReg(2));
}

TEST(Builder, StampsEmissionIndexAsSrcLine)
{
    ProgramBuilder b("prov");
    b.movi(intReg(1), 1);
    b.add(intReg(2), intReg(1), intReg(1));
    b.halt();
    Program p = b.finalize();
    // 1-based pseudo lines point diagnostics back at the builder
    // call sequence; they must not feed the content identity.
    EXPECT_EQ(p.inst(0).srcLine, 1);
    EXPECT_EQ(p.inst(1).srcLine, 2);
    EXPECT_EQ(p.inst(2).srcLine, 3);

    ProgramBuilder b2("prov");
    b2.movi(intReg(1), 1);
    b2.add(intReg(2), intReg(1), intReg(1));
    b2.halt();
    Program p2 = b2.finalize();
    EXPECT_EQ(p.instStreamHash(), p2.instStreamHash());
}

TEST(Builder, FpEmitters)
{
    ProgramBuilder b("fp");
    b.itof(fpReg(1), intReg(2));
    b.fadd(fpReg(3), fpReg(1), fpReg(2));
    b.fdiv(fpReg(4), fpReg(3), fpReg(1));
    b.fcmp(CmpCond::kGe, predReg(3), predReg(4), fpReg(4), fpReg(1));
    b.ftoi(intReg(5), fpReg(4));
    b.halt();
    Program p = b.finalize();

    EXPECT_EQ(p.inst(0).op, Opcode::kItof);
    EXPECT_EQ(p.inst(1).op, Opcode::kFadd);
    EXPECT_EQ(p.inst(2).op, Opcode::kFdiv);
    EXPECT_EQ(p.inst(3).op, Opcode::kFcmp);
    EXPECT_EQ(p.inst(4).op, Opcode::kFtoi);
}

TEST(Builder, LabelResolution)
{
    ProgramBuilder b("labels");
    b.movi(intReg(1), 0);
    b.label("target");
    b.addi(intReg(1), intReg(1), 1);
    b.cmpi(CmpCond::kLt, predReg(1), predReg(2), intReg(1), 3);
    b.br("target");
    b.pred(predReg(1));
    b.halt();
    Program p = b.finalize();

    const Instruction &br = p.inst(3);
    ASSERT_TRUE(br.isBranch());
    EXPECT_EQ(br.imm, 1); // the label binds to inst 1
    EXPECT_EQ(br.qpred, predReg(1));
    EXPECT_EQ(p.validate(), "");
}

TEST(Builder, ForwardLabel)
{
    ProgramBuilder b("fwd");
    b.br("end");
    b.movi(intReg(1), 1);
    b.label("end");
    b.halt();
    Program p = b.finalize();
    EXPECT_EQ(p.inst(0).imm, 2);
}

TEST(Builder, AutoStopMakesSingletonGroups)
{
    ProgramBuilder b("auto", /*auto_stop=*/true);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.halt();
    Program p = b.finalize();
    for (ff::InstIdx i = 0; i < p.size(); ++i)
        EXPECT_TRUE(p.inst(i).stop);
}

TEST(Builder, ManualStopsControlGroups)
{
    ProgramBuilder b("manual", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop();
    b.halt();
    Program p = b.finalize();
    EXPECT_FALSE(p.inst(0).stop);
    EXPECT_TRUE(p.inst(1).stop);
}

TEST(Builder, BranchAlwaysEndsGroup)
{
    ProgramBuilder b("brstop", /*auto_stop=*/false);
    b.label("l");
    b.br("l");
    b.halt();
    Program p = b.finalize();
    EXPECT_TRUE(p.inst(0).stop);
}

TEST(Builder, FinalizeForcesTrailingStop)
{
    ProgramBuilder b("trail", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.halt(); // no explicit stop
    Program p = b.finalize();
    EXPECT_TRUE(p.inst(p.size() - 1).stop);
}

TEST(Builder, PredSetsQualifier)
{
    ProgramBuilder b("preds");
    b.movi(intReg(1), 1);
    b.pred(predReg(5));
    b.halt();
    Program p = b.finalize();
    EXPECT_EQ(p.inst(0).qpred, predReg(5));
}

TEST(BuilderDeathTest, UndefinedLabelIsFatal)
{
    ProgramBuilder b("undef");
    b.br("nowhere");
    b.halt();
    EXPECT_EXIT(b.finalize(), ::testing::ExitedWithCode(1),
                "undefined label");
}

TEST(BuilderDeathTest, DuplicateLabelIsFatal)
{
    ProgramBuilder b("dup");
    b.label("x");
    b.movi(intReg(1), 1);
    EXPECT_EXIT(b.label("x"), ::testing::ExitedWithCode(1),
                "duplicate label");
}

TEST(BuilderDeathTest, EmptyFinalizeIsFatal)
{
    ProgramBuilder b("empty");
    EXPECT_EXIT(b.finalize(), ::testing::ExitedWithCode(1), "empty");
}

TEST(BuilderDeathTest, PredBeforeAnyInstructionIsFatal)
{
    ProgramBuilder b("p");
    EXPECT_EXIT(b.pred(predReg(1)), ::testing::ExitedWithCode(1),
                "before any instruction");
}

TEST(BuilderDeathTest, NonPredQualifierIsFatal)
{
    ProgramBuilder b("q");
    b.movi(intReg(1), 1);
    EXPECT_EXIT(b.pred(intReg(2)), ::testing::ExitedWithCode(1),
                "predicate reg");
}

} // namespace
