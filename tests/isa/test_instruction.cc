/** @file Unit tests for instruction metadata and operand queries. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace
{

using namespace ff::isa;

TEST(OpInfo, MnemonicsAndUnits)
{
    EXPECT_STREQ(opInfo(Opcode::kAdd).mnemonic, "add");
    EXPECT_EQ(opInfo(Opcode::kAdd).unit, UnitClass::kAlu);
    EXPECT_EQ(opInfo(Opcode::kLd8).unit, UnitClass::kMem);
    EXPECT_EQ(opInfo(Opcode::kSt4).unit, UnitClass::kMem);
    EXPECT_EQ(opInfo(Opcode::kFdiv).unit, UnitClass::kFp);
    EXPECT_EQ(opInfo(Opcode::kBr).unit, UnitClass::kBranch);
}

TEST(OpInfo, Latencies)
{
    EXPECT_EQ(opInfo(Opcode::kAdd).latency, 1u);
    EXPECT_EQ(opInfo(Opcode::kMul).latency, 3u);
    EXPECT_EQ(opInfo(Opcode::kFadd).latency, 4u);
    EXPECT_EQ(opInfo(Opcode::kFdiv).latency, 16u);
    // Loads carry their latency in the memory hierarchy, not here.
    EXPECT_EQ(opInfo(Opcode::kLd8).latency, 0u);
}

TEST(RegId, ConstructorsAndNames)
{
    EXPECT_EQ(regName(intReg(5)), "r5");
    EXPECT_EQ(regName(fpReg(2)), "f2");
    EXPECT_EQ(regName(predReg(7)), "p7");
    EXPECT_EQ(regName(noReg()), "-");
    EXPECT_FALSE(noReg().valid());
    EXPECT_TRUE(intReg(0).valid());
}

TEST(RegId, Equality)
{
    EXPECT_EQ(intReg(3), intReg(3));
    EXPECT_NE(intReg(3), fpReg(3));
    EXPECT_NE(intReg(3), intReg(4));
}

TEST(CondName, AllConditions)
{
    EXPECT_STREQ(condName(CmpCond::kEq), "eq");
    EXPECT_STREQ(condName(CmpCond::kNe), "ne");
    EXPECT_STREQ(condName(CmpCond::kLt), "lt");
    EXPECT_STREQ(condName(CmpCond::kLe), "le");
    EXPECT_STREQ(condName(CmpCond::kGt), "gt");
    EXPECT_STREQ(condName(CmpCond::kGe), "ge");
    EXPECT_STREQ(condName(CmpCond::kLtu), "ltu");
}

TEST(Instruction, Predicates)
{
    Instruction in;
    in.op = Opcode::kLd4;
    EXPECT_TRUE(in.isLoad());
    EXPECT_TRUE(in.isMem());
    EXPECT_FALSE(in.isStore());
    in.op = Opcode::kSt8;
    EXPECT_TRUE(in.isStore());
    EXPECT_TRUE(in.isMem());
    in.op = Opcode::kBr;
    EXPECT_TRUE(in.isBranch());
    in.op = Opcode::kHalt;
    EXPECT_TRUE(in.isHalt());
    in.op = Opcode::kNop;
    EXPECT_TRUE(in.isNop());
    in.op = Opcode::kFmul;
    EXPECT_TRUE(in.isFp());
}

TEST(Instruction, SourcesIncludeQpredFirst)
{
    Instruction in;
    in.op = Opcode::kAdd;
    in.qpred = predReg(3);
    in.src1 = intReg(4);
    in.src2 = intReg(5);
    std::array<RegId, 4> srcs;
    const unsigned n = in.sources(srcs);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(srcs[0], predReg(3));
    EXPECT_EQ(srcs[1], intReg(4));
    EXPECT_EQ(srcs[2], intReg(5));
}

TEST(Instruction, ImmediateSrc2NotASource)
{
    Instruction in;
    in.op = Opcode::kAdd;
    in.src1 = intReg(4);
    in.src2 = intReg(5); // set, but shadowed by the immediate flag
    in.src2IsImm = true;
    std::array<RegId, 4> srcs;
    EXPECT_EQ(in.sources(srcs), 2u); // qpred + src1 only
}

TEST(Instruction, DestinationsOfCompare)
{
    Instruction in;
    in.op = Opcode::kCmp;
    in.dst = predReg(1);
    in.dst2 = predReg(2);
    std::array<RegId, 2> dsts;
    const unsigned n = in.destinations(dsts);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(dsts[0], predReg(1));
    EXPECT_EQ(dsts[1], predReg(2));
}

TEST(Instruction, StoreHasNoDestinations)
{
    Instruction in;
    in.op = Opcode::kSt8;
    in.src1 = intReg(1);
    in.src2 = intReg(2);
    std::array<RegId, 2> dsts;
    EXPECT_EQ(in.destinations(dsts), 0u);
}

TEST(Instruction, DefaultQpredIsP0)
{
    Instruction in;
    EXPECT_EQ(in.qpred, predReg(0));
}

} // namespace
