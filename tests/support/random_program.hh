/**
 * @file
 * Shared random-program generator for property tests: produces valid,
 * terminating EPIC programs with loops, predication, data-dependent
 * skips and bounded memory traffic.
 */

#ifndef FF_TESTS_SUPPORT_RANDOM_PROGRAM_HH
#define FF_TESTS_SUPPORT_RANDOM_PROGRAM_HH

#include <string>
#include <utility>

#include "common/random.hh"
#include "compiler/scheduler.hh"
#include "isa/builder.hh"

namespace ff
{
namespace testsupport
{

using namespace ff::isa;

/** Register pools the generator draws from. */
constexpr unsigned kIntPool = 16;   // r1..r16
constexpr unsigned kFpPool = 6;     // f1..f6
constexpr unsigned kPredPool = 6;   // p1..p6
constexpr Addr kDataBase = 0x100000;
// Address-window mask for memory traffic. The default 32KB window
// spreads accesses; the aliasing-heavy instantiation shrinks it so
// loads constantly race deferred stores through the ALAT.
inline std::int64_t g_data_mask = 0x7FF8;

inline RegId
randInt(Rng &rng)
{
    return intReg(1 + static_cast<unsigned>(rng.nextBelow(kIntPool)));
}

inline RegId
randFp(Rng &rng)
{
    return fpReg(1 + static_cast<unsigned>(rng.nextBelow(kFpPool)));
}

inline RegId
randPred(Rng &rng)
{
    return predReg(1 + static_cast<unsigned>(rng.nextBelow(kPredPool)));
}

inline CmpCond
randCond(Rng &rng)
{
    return static_cast<CmpCond>(rng.nextBelow(7));
}

/** Two *distinct* predicate destinations (same-reg pairs are WAW). */
inline std::pair<RegId, RegId>
randPredPair(Rng &rng)
{
    const unsigned a = 1 + static_cast<unsigned>(rng.nextBelow(kPredPool));
    const unsigned b =
        1 + (a - 1 + 1 + static_cast<unsigned>(rng.nextBelow(
                             kPredPool - 1))) % kPredPool;
    return {predReg(a), predReg(b)};
}

/** Emits one random body instruction (possibly predicated). */
inline void
emitRandomInst(ProgramBuilder &b, Rng &rng)
{
    const bool predicated = rng.chance(0.25);
    const auto pred = randPred(rng);

    switch (rng.nextBelow(12)) {
      case 0:
        b.add(randInt(rng), randInt(rng), randInt(rng));
        break;
      case 1:
        b.sub(randInt(rng), randInt(rng), randInt(rng));
        break;
      case 2:
        b.xori(randInt(rng), randInt(rng),
               rng.nextRange(-4096, 4096));
        break;
      case 3:
        b.shri(randInt(rng), randInt(rng),
               static_cast<std::int64_t>(rng.nextBelow(24)));
        break;
      case 4:
        b.mul(randInt(rng), randInt(rng), randInt(rng));
        break;
      case 5: {
        const auto [pt, pf] = randPredPair(rng);
        b.cmp(randCond(rng), pt, pf, randInt(rng), randInt(rng));
        break;
      }
      case 6: { // load from the bounded window
        const RegId addr = intReg(17);
        b.andi(addr, randInt(rng), g_data_mask);
        b.addi(addr, addr, static_cast<std::int64_t>(kDataBase));
        if (rng.chance(0.5))
            b.ld8(randInt(rng), addr, 0);
        else
            b.ld4(randInt(rng), addr, rng.nextBelow(2) * 4);
        break;
      }
      case 7: { // store into the bounded window
        const RegId addr = intReg(18);
        b.andi(addr, randInt(rng), g_data_mask);
        b.addi(addr, addr, static_cast<std::int64_t>(kDataBase));
        if (rng.chance(0.5))
            b.st8(addr, 0, randInt(rng));
        else
            b.st4(addr, rng.nextBelow(2) * 4, randInt(rng));
        break;
      }
      case 8:
        b.fadd(randFp(rng), randFp(rng), randFp(rng));
        break;
      case 9:
        b.fmul(randFp(rng), randFp(rng), randFp(rng));
        break;
      case 10:
        b.itof(randFp(rng), randInt(rng));
        break;
      case 11:
        b.ftoi(randInt(rng), randFp(rng));
        break;
    }
    if (predicated)
        b.pred(pred);
}

/** Generates a valid, terminating random program. */
inline Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));

    // Seed the register pools.
    for (unsigned i = 1; i <= kIntPool; ++i)
        b.movi(intReg(i), rng.nextRange(-100000, 100000));
    for (unsigned i = 1; i <= kFpPool; ++i)
        b.itof(fpReg(i), intReg(1 + (i % kIntPool)));
    for (unsigned i = 1; i <= kPredPool; ++i) {
        b.cmpi(randCond(rng), predReg(i),
               predReg(1 + (i % kPredPool)), randInt(rng),
               rng.nextRange(-10, 10));
    }

    const unsigned num_loops = 1 + rng.nextBelow(3);
    for (unsigned loop = 0; loop < num_loops; ++loop) {
        const std::string label = "loop" + std::to_string(loop);
        // A dedicated counter register keeps the loop bounded.
        b.movi(intReg(24), rng.nextRange(2, 8));
        b.label(label);

        const unsigned body = 4 + rng.nextBelow(14);
        unsigned seg = 0;
        while (seg < body) {
            if (rng.chance(0.2)) {
                // A data-dependent forward skip over a short segment.
                const std::string skip = "skip" + std::to_string(loop) +
                                         "_" + std::to_string(seg);
                b.cmp(randCond(rng), predReg(7), predReg(8),
                      randInt(rng), randInt(rng));
                b.br(skip);
                b.pred(predReg(7));
                const unsigned inner = 1 + rng.nextBelow(3);
                for (unsigned k = 0; k < inner; ++k)
                    emitRandomInst(b, rng);
                b.label(skip);
                seg += inner + 1;
            } else {
                emitRandomInst(b, rng);
                ++seg;
            }
        }

        b.subi(intReg(24), intReg(24), 1);
        b.cmpi(CmpCond::kGt, predReg(20), predReg(21), intReg(24), 0);
        b.br(label);
        b.pred(predReg(20));
    }

    // Fold visible state into a checksum and halt.
    for (unsigned i = 2; i <= 8; ++i)
        b.add(intReg(1), intReg(1), intReg(i));
    b.movi(intReg(19), 0x100);
    b.st8(intReg(19), 0, intReg(1));
    b.halt();

    Program seq = b.finalize();
    for (std::int64_t off = 0; off <= g_data_mask; off += 8) {
        seq.poke64(kDataBase + static_cast<Addr>(off),
                   rng.next() & 0xFFFFFFFFFFFFULL);
    }
    return compiler::schedule(seq);
}


} // namespace testsupport
} // namespace ff

#endif // FF_TESTS_SUPPORT_RANDOM_PROGRAM_HH
