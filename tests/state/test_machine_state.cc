/**
 * @file
 * MachineState structure-of-arrays tests at the container level: the
 * coupling-queue ring (field gather, wrap-around, snapshot
 * round-trip), the scoreboard's packed busy superset across
 * save/restore, the dirty-mask-driven run-ahead checkpoint, the
 * conflict-retry sorted set, and the A-file packed V/S masks. The
 * whole-model round-trips (every kind x workload, statsReport
 * equality) live in tests/sim/test_snapshot.cc; these tests pin the
 * SoA mechanics those round-trips are built on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/serialize.hh"
#include "cpu/state/machine_state.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;

CqEntry
makeEntry(DynId id, InstIdx idx)
{
    CqEntry e;
    e.idx = idx;
    e.id = id;
    e.enqueuedAt = 10 + id;
    e.status = (id % 2) ? CqStatus::kPreExecuted : CqStatus::kDeferred;
    e.reason =
        (id % 2) ? DeferReason::kNone : DeferReason::kOperandInvalid;
    e.groupEnd = (id % 3) == 0;
    e.predTrue = true;
    e.writesDst = (id % 2) != 0;
    e.dstVal = 0x1000 + id;
    e.dst2Val = 0x2000 + id;
    e.readyAt = 20 + id;
    e.isLoad = (id % 5) == 0;
    e.isStore = (id % 7) == 0 && !e.isLoad;
    e.addr = 0x4000 + id * 8;
    e.size = 8;
    e.isBranch = false;
    e.fallthrough = idx + 1;
    return e;
}

void
expectSameEntry(const CqEntry &a, const CqEntry &b)
{
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.enqueuedAt, b.enqueuedAt);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.groupEnd, b.groupEnd);
    EXPECT_EQ(a.predTrue, b.predTrue);
    EXPECT_EQ(a.writesDst, b.writesDst);
    EXPECT_EQ(a.writesDst2, b.writesDst2);
    EXPECT_EQ(a.dstVal, b.dstVal);
    EXPECT_EQ(a.dst2Val, b.dst2Val);
    EXPECT_EQ(a.readyAt, b.readyAt);
    EXPECT_EQ(a.isLoad, b.isLoad);
    EXPECT_EQ(a.isStore, b.isStore);
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.isBranch, b.isBranch);
    EXPECT_EQ(a.fallthrough, b.fallthrough);
}

TEST(CouplingQueueSoA, FieldGatherMatchesPushedEntry)
{
    CouplingQueue cq(8);
    const CqEntry e = makeEntry(5, 3);
    cq.push(e);
    expectSameEntry(cq.entry(0), e);
    // Per-field accessors agree with the gathered view.
    EXPECT_EQ(cq.id(0), e.id);
    EXPECT_EQ(cq.idx(0), e.idx);
    EXPECT_EQ(cq.enqueuedAt(0), e.enqueuedAt);
    EXPECT_EQ(cq.readyAt(0), e.readyAt);
    EXPECT_EQ(cq.preExecuted(0), e.status == CqStatus::kPreExecuted);
    EXPECT_EQ(cq.isLoad(0), e.isLoad);
    EXPECT_EQ(cq.dstVal(0), e.dstVal);
}

TEST(CouplingQueueSoA, RingWrapKeepsLogicalOrder)
{
    // Capacity 4: push 4, pop 3, push 3 — the ring wraps physically
    // but logical indices must stay FIFO-ordered.
    CouplingQueue cq(4);
    for (DynId id = 1; id <= 4; ++id)
        cq.push(makeEntry(id, static_cast<InstIdx>(id)));
    cq.pop();
    cq.pop();
    cq.pop();
    for (DynId id = 5; id <= 7; ++id)
        cq.push(makeEntry(id, static_cast<InstIdx>(id)));
    ASSERT_EQ(cq.size(), 4u);
    ASSERT_TRUE(cq.full());
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(cq.id(i), static_cast<DynId>(4 + i));
        expectSameEntry(cq.entry(i),
                        makeEntry(4 + i, static_cast<InstIdx>(4 + i)));
    }
}

TEST(CouplingQueueSoA, SaveRestoreRoundTripsAWrappedRing)
{
    CouplingQueue cq(4);
    for (DynId id = 1; id <= 4; ++id)
        cq.push(makeEntry(id, static_cast<InstIdx>(id)));
    cq.pop();
    cq.pop();
    cq.push(makeEntry(5, 5));

    serial::Writer w;
    cq.save(w);

    CouplingQueue back(4);
    serial::Reader r(w.buffer());
    back.restore(r);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(back.size(), cq.size());
    for (std::size_t i = 0; i < cq.size(); ++i)
        expectSameEntry(back.entry(i), cq.entry(i));
    EXPECT_EQ(back.deferredStores(), cq.deferredStores());

    // Restored state re-encodes to identical bytes (the restore
    // compacts the ring; the encoding is logical-order, so the bytes
    // must not change).
    serial::Writer w2;
    back.save(w2);
    EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(CouplingQueueSoA, RestoreRejectsForeignCapacity)
{
    CouplingQueue cq(4);
    cq.push(makeEntry(1, 1));
    serial::Writer w;
    cq.save(w);

    CouplingQueue other(8);
    serial::Reader r(w.buffer());
    other.restore(r);
    EXPECT_FALSE(r.ok());
}

TEST(ScoreboardSoA, BusySupersetSurvivesRestore)
{
    Scoreboard sb;
    sb.setPending(isa::intReg(3), 50, PendingKind::kLoad);
    sb.setPending(isa::intReg(7), 20, PendingKind::kNonLoad);
    EXPECT_FALSE(sb.quiescentBy(30));
    EXPECT_TRUE(sb.quiescentBy(50));
    EXPECT_FALSE(sb.ready(isa::intReg(3), 30));
    EXPECT_TRUE(sb.ready(isa::intReg(7), 30));

    serial::Writer w;
    sb.save(w);
    Scoreboard back;
    serial::Reader r(w.buffer());
    back.restore(r);
    ASSERT_TRUE(r.ok());

    // The packed busy superset is rebuilt from the ready times: the
    // restored scoreboard answers every query like the original.
    EXPECT_FALSE(back.ready(isa::intReg(3), 30));
    EXPECT_TRUE(back.ready(isa::intReg(3), 50));
    EXPECT_FALSE(back.quiescentBy(49));
    EXPECT_TRUE(back.quiescentBy(50));
    EXPECT_EQ(back.kindOf(isa::intReg(3)), PendingKind::kLoad);

    std::vector<unsigned> busy;
    back.forEachBusy([&](unsigned slot) { busy.push_back(slot); });
    EXPECT_EQ(busy.size(), 2u);
}

TEST(MachineState, CheckpointCopiesOnlyDirtySlotsButAllOfThem)
{
    const CoreConfig cfg;
    MachineState ms(cfg);

    // First checkpoint after construction: both masks are fully
    // dirty (reset() is conservative), so the files must now agree
    // everywhere.
    ms.regs.write(isa::intReg(1), 111);
    ms.regs.write(isa::intReg(2), 222);
    ms.checkpointRegsToRa();
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot)
        ASSERT_EQ(ms.raRegs.slotValue(slot), ms.regs.slotValue(slot));
    EXPECT_FALSE(ms.regs.dirtyMask().any());
    EXPECT_FALSE(ms.raRegs.dirtyMask().any());

    // An episode scribbles over the shadow file; the architectural
    // file advances elsewhere. The next checkpoint must repair both
    // kinds of divergence — shadow-dirty and arch-dirty slots.
    ms.raRegs.write(isa::intReg(5), 0xdead);
    ms.regs.write(isa::intReg(2), 333);
    ms.checkpointRegsToRa();
    for (unsigned slot = 0; slot < kNumRegSlots; ++slot)
        ASSERT_EQ(ms.raRegs.slotValue(slot), ms.regs.slotValue(slot));
    EXPECT_EQ(ms.raRegs.read(isa::intReg(2)), 333);
    EXPECT_EQ(ms.raRegs.read(isa::intReg(5)),
              ms.regs.read(isa::intReg(5)));
}

TEST(MachineState, ConflictRetryIsASortedSet)
{
    const CoreConfig cfg;
    MachineState ms(cfg);
    EXPECT_FALSE(ms.conflictRetryContains(7));

    ms.conflictRetryInsert(9);
    ms.conflictRetryInsert(2);
    ms.conflictRetryInsert(7);
    ms.conflictRetryInsert(7); // duplicate: no-op
    EXPECT_TRUE(ms.conflictRetryContains(2));
    EXPECT_TRUE(ms.conflictRetryContains(7));
    EXPECT_TRUE(ms.conflictRetryContains(9));
    EXPECT_FALSE(ms.conflictRetryContains(3));
    const std::vector<InstIdx> want = {2, 7, 9};
    EXPECT_EQ(ms.conflictRetry(), want); // sorted, deduplicated

    ms.conflictRetryClear();
    EXPECT_FALSE(ms.conflictRetryContains(7));
    EXPECT_TRUE(ms.conflictRetry().empty());
}

TEST(MachineState, AFilePackedMasksTrackWritesAndRepair)
{
    const CoreConfig cfg;
    MachineState ms(cfg);
    ms.regs.write(isa::intReg(4), 44);

    ms.afile.writeExecuted(isa::intReg(4), 999, /*id=*/7,
                           /*ready_at=*/0, PendingKind::kNonLoad);
    ms.afile.markDeferred(isa::intReg(6), /*id=*/8);
    EXPECT_TRUE(ms.afile.valid(isa::intReg(4)));
    EXPECT_TRUE(ms.afile.speculative(isa::intReg(4)));
    EXPECT_FALSE(ms.afile.valid(isa::intReg(6)));
    EXPECT_EQ(ms.afile.specMask().count(), 2u);

    // Flush repair scans the packed masks: both touched registers
    // are restored from the architectural file in one pass.
    const unsigned repaired = ms.afile.repairFromArch(ms.regs);
    EXPECT_EQ(repaired, 2u);
    EXPECT_EQ(ms.afile.read(isa::intReg(4)), 44);
    EXPECT_TRUE(ms.afile.valid(isa::intReg(6)));
    EXPECT_FALSE(ms.afile.specMask().any());
}

} // namespace
