/**
 * @file
 * PackedBits container unit tests at every edge width: exactly one
 * word, word-boundary-1, word-boundary+1, multi-word — set/clear
 * semantics, the tail-trimming invariant behind count()/any(), the
 * forEachSet scan order, and the snapshot round-trip.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/serialize.hh"
#include "cpu/state/bitset.hh"

namespace
{

using namespace ff;
using cpu::PackedBits;

template <unsigned N>
std::vector<unsigned>
setBits(const PackedBits<N> &b)
{
    std::vector<unsigned> v;
    b.forEachSet([&](unsigned i) { v.push_back(i); });
    return v;
}

TEST(PackedBits, SetTestClearAssign)
{
    PackedBits<100> b;
    EXPECT_FALSE(b.any());
    EXPECT_EQ(b.count(), 0u);

    b.set(0);
    b.set(63);
    b.set(64);
    b.set(99);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(99));
    EXPECT_FALSE(b.test(1));
    EXPECT_FALSE(b.test(65));
    EXPECT_EQ(b.count(), 4u);

    b.clear(63);
    EXPECT_FALSE(b.test(63));
    EXPECT_EQ(b.count(), 3u);

    b.assign(63, true);
    b.assign(0, false);
    EXPECT_TRUE(b.test(63));
    EXPECT_FALSE(b.test(0));
    EXPECT_EQ(b.count(), 3u);
}

TEST(PackedBits, WordGeometryAtEdgeWidths)
{
    EXPECT_EQ(PackedBits<1>::kWords, 1u);
    EXPECT_EQ(PackedBits<63>::kWords, 1u);
    EXPECT_EQ(PackedBits<64>::kWords, 1u);
    EXPECT_EQ(PackedBits<65>::kWords, 2u);
    EXPECT_EQ(PackedBits<128>::kWords, 2u);
    EXPECT_EQ(PackedBits<129>::kWords, 3u);
}

TEST(PackedBits, SetAllTrimsTheTailWord)
{
    // 65 bits: the second word holds exactly one live bit; setAll()
    // must not count the 63 dead tail bits.
    PackedBits<65> b;
    b.setAll();
    EXPECT_EQ(b.count(), 65u);
    EXPECT_TRUE(b.test(64));
    EXPECT_EQ(b.word(1), 1u);

    // An exact multiple of 64 has no tail to trim.
    PackedBits<128> c;
    c.setAll();
    EXPECT_EQ(c.count(), 128u);
    EXPECT_EQ(c.word(1), ~std::uint64_t{0});

    PackedBits<1> d;
    d.setAll();
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.word(0), 1u);
}

TEST(PackedBits, SetWordTrimsOnlyTheLastWord)
{
    PackedBits<70> b;
    b.setWord(0, ~std::uint64_t{0});
    EXPECT_EQ(b.word(0), ~std::uint64_t{0});
    b.setWord(1, ~std::uint64_t{0}); // 6 live bits, 58 dead
    EXPECT_EQ(b.word(1), (std::uint64_t{1} << 6) - 1);
    EXPECT_EQ(b.count(), 70u);
}

TEST(PackedBits, ForEachSetAscendingAcrossWords)
{
    PackedBits<192> b;
    const std::vector<unsigned> want = {0, 1, 62, 63, 64, 100, 127,
                                        128, 191};
    for (unsigned i : want)
        b.set(i);
    EXPECT_EQ(setBits(b), want);
    EXPECT_EQ(b.count(), static_cast<unsigned>(want.size()));
}

TEST(PackedBits, ClearAllAndEquality)
{
    PackedBits<96> a, b;
    EXPECT_EQ(a, b);
    a.set(5);
    a.set(70);
    EXPECT_NE(a, b);
    b.set(70);
    b.set(5);
    EXPECT_EQ(a, b);
    a.clearAll();
    EXPECT_FALSE(a.any());
    EXPECT_NE(a, b);
}

TEST(PackedBits, SaveRestoreRoundTrip)
{
    PackedBits<130> a;
    for (unsigned i : {0u, 31u, 64u, 65u, 127u, 128u, 129u})
        a.set(i);

    serial::Writer w;
    a.save(w);
    EXPECT_EQ(w.buffer().size(), PackedBits<130>::kWords * 8);

    PackedBits<130> b;
    b.setAll(); // restore must fully overwrite
    serial::Reader r(w.buffer());
    b.restore(r);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(a, b);
}

TEST(PackedBits, RestoreTrimsForeignTailBits)
{
    // A stream whose last word has bits past N set (e.g. hand-built
    // or corrupted) must not poison count()/any() after restore.
    serial::Writer w;
    w.u64(0);
    w.u64(~std::uint64_t{0});
    PackedBits<65> b;
    serial::Reader r(w.buffer());
    b.restore(r);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_TRUE(b.test(64));
}

} // namespace
