/** @file Unit tests for the fetch/predict front end. */

#include <gtest/gtest.h>

#include "branch/gshare.hh"
#include "compiler/scheduler.hh"
#include "cpu/frontend.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/** A small looped program: 2 iterations, then halt. */
Program
loopProgram()
{
    ProgramBuilder b("fe");
    b.movi(intReg(1), 0);
    b.label("loop");
    b.addi(intReg(1), intReg(1), 1);
    b.cmpi(CmpCond::kLt, predReg(1), predReg(2), intReg(1), 2);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    return b.finalize();
}

struct Fixture
{
    Program prog;
    CoreConfig cfg;
    branch::GsharePredictor pred{1024};
    memory::Hierarchy hier{memory::MemoryConfig{}};

    explicit Fixture(Program p = loopProgram()) : prog(std::move(p))
    {
        // Make the instruction side instant so timing tests focus on
        // the pipeline depth, not cold I-cache misses.
        warmIcache();
    }

    void
    warmIcache()
    {
        for (InstIdx i = 0; i < prog.size(); ++i)
            hier.l1i().insert(Program::instAddr(i), false);
        for (Addr a = 0; a < 4096; a += 64)
            hier.l1i().insert(Program::kTextBase + a, false);
    }
};

TEST(FrontEnd, GroupArrivesAfterPipelineDepth)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    fe.tick(0);
    EXPECT_FALSE(fe.headReady(f.cfg.frontEndDepth - 1));
    EXPECT_TRUE(fe.headReady(f.cfg.frontEndDepth));
    EXPECT_EQ(fe.head().leader, 0u);
}

TEST(FrontEnd, FetchesOneGroupPerCycle)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    fe.tick(0);
    fe.tick(1);
    const Cycle ready = f.cfg.frontEndDepth + 1;
    ASSERT_TRUE(fe.headReady(ready));
    EXPECT_EQ(fe.head().leader, 0u);
    fe.pop();
    ASSERT_TRUE(fe.headReady(ready));
    EXPECT_EQ(fe.head().leader, 1u); // the movi group, then the loop
}

TEST(FrontEnd, QueueCapacityThrottlesFetch)
{
    Fixture f;
    f.cfg.fetchQueueGroups = 2;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    for (Cycle c = 0; c < 10; ++c)
        fe.tick(c);
    // Only two groups may be buffered.
    std::size_t n = 0;
    while (!fe.empty()) {
        fe.pop();
        ++n;
    }
    EXPECT_EQ(n, 2u);
}

TEST(FrontEnd, BranchGroupCarriesPredictionMetadata)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    // Fetch groups until the branch group (leader 1..3, branch at 3).
    for (Cycle c = 0; c < 6; ++c)
        fe.tick(c);
    bool saw_branch_group = false;
    while (!fe.empty()) {
        const FetchedGroup &g = fe.head();
        if (g.hasBranch) {
            saw_branch_group = true;
            const InstIdx expected_next =
                g.predictedTaken
                    ? static_cast<InstIdx>(
                          f.prog.inst(g.end - 1).imm)
                    : g.end;
            EXPECT_EQ(g.predictedNext, expected_next);
        }
        fe.pop();
    }
    EXPECT_TRUE(saw_branch_group);
}

TEST(FrontEnd, StopsAtHalt)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    // Weakly-not-taken predictor: the loop branch predicts
    // not-taken, so fetch falls through to the halt and stops.
    for (Cycle c = 0; c < 20; ++c)
        fe.tick(c);
    EXPECT_TRUE(fe.fetchStopped());
}

TEST(FrontEnd, RedirectSquashesAndResumes)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    for (Cycle c = 0; c < 5; ++c)
        fe.tick(c);
    EXPECT_FALSE(fe.empty());
    fe.redirect(1, 10);
    EXPECT_TRUE(fe.empty());
    EXPECT_TRUE(fe.redirecting(9));
    fe.tick(9); // suspended
    EXPECT_TRUE(fe.empty());
    fe.tick(10); // resumes
    ASSERT_FALSE(fe.empty());
    EXPECT_EQ(fe.head().leader, 1u);
    EXPECT_EQ(fe.head().readyAt, 10 + f.cfg.frontEndDepth);
    EXPECT_EQ(fe.stats().redirects, 1u);
}

TEST(FrontEnd, RedirectReawakensAfterHalt)
{
    Fixture f;
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    for (Cycle c = 0; c < 20; ++c)
        fe.tick(c);
    ASSERT_TRUE(fe.fetchStopped());
    fe.redirect(1, 21);
    EXPECT_FALSE(fe.fetchStopped());
    fe.tick(21);
    // Queue was cleared by the redirect; fresh fetch from 1.
    bool found = false;
    while (!fe.empty()) {
        if (fe.head().leader == 1)
            found = true;
        fe.pop();
    }
    EXPECT_TRUE(found);
}

TEST(FrontEnd, ColdIcacheDelaysReadiness)
{
    Fixture f;
    // Rebuild the hierarchy cold (the fixture warmed it).
    f.hier.reset();
    FrontEnd fe(f.prog, f.cfg, f.pred, f.hier,
                memory::Initiator::kBaseline);
    fe.tick(0);
    ASSERT_FALSE(fe.empty());
    // A memory-latency fetch: depth + (145 - L1I latency).
    EXPECT_EQ(fe.head().readyAt,
              f.cfg.frontEndDepth + 145 - f.cfg.mem.l1i.latency);
    EXPECT_GT(fe.stats().icacheMissCycles, 0u);
}

} // namespace
