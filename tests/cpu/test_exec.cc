/** @file Unit tests for functional instruction evaluation. */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "cpu/exec.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

Instruction
alu(Opcode op, RegVal = 0)
{
    Instruction in;
    in.op = op;
    in.dst = intReg(1);
    in.src1 = intReg(2);
    in.src2 = intReg(3);
    return in;
}

RegVal
bits(double d)
{
    return std::bit_cast<RegVal>(d);
}

double
dbl(RegVal v)
{
    return std::bit_cast<double>(v);
}

TEST(Evaluate, IntegerArithmetic)
{
    EXPECT_EQ(evaluate(alu(Opcode::kAdd), true, 7, 5).dstVal, 12u);
    EXPECT_EQ(evaluate(alu(Opcode::kSub), true, 7, 5).dstVal, 2u);
    EXPECT_EQ(evaluate(alu(Opcode::kMul), true, 7, 5).dstVal, 35u);
    EXPECT_EQ(evaluate(alu(Opcode::kAnd), true, 0b1100, 0b1010).dstVal,
              0b1000u);
    EXPECT_EQ(evaluate(alu(Opcode::kOr), true, 0b1100, 0b1010).dstVal,
              0b1110u);
    EXPECT_EQ(evaluate(alu(Opcode::kXor), true, 0b1100, 0b1010).dstVal,
              0b0110u);
}

TEST(Evaluate, SubWrapsModulo64)
{
    EXPECT_EQ(evaluate(alu(Opcode::kSub), true, 0, 1).dstVal,
              ~RegVal(0));
}

TEST(Evaluate, Shifts)
{
    EXPECT_EQ(evaluate(alu(Opcode::kShl), true, 1, 4).dstVal, 16u);
    EXPECT_EQ(evaluate(alu(Opcode::kShr), true, 0x8000000000000000ULL,
                       63)
                  .dstVal,
              1u);
    // Arithmetic shift preserves the sign.
    EXPECT_EQ(evaluate(alu(Opcode::kSra), true,
                       static_cast<RegVal>(-16), 2)
                  .dstVal,
              static_cast<RegVal>(-4));
    // Shift amounts are taken modulo 64.
    EXPECT_EQ(evaluate(alu(Opcode::kShl), true, 1, 64 + 3).dstVal, 8u);
}

TEST(Evaluate, MovAndMovi)
{
    Instruction mov = alu(Opcode::kMov);
    EXPECT_EQ(evaluate(mov, true, 42, 0).dstVal, 42u);
    Instruction movi;
    movi.op = Opcode::kMovi;
    movi.dst = intReg(1);
    movi.imm = -9;
    EXPECT_EQ(evaluate(movi, true, 0, 0).dstVal,
              static_cast<RegVal>(-9));
}

TEST(Evaluate, CompareWritesComplementaryPair)
{
    Instruction cmp;
    cmp.op = Opcode::kCmp;
    cmp.cond = CmpCond::kLt;
    cmp.dst = predReg(1);
    cmp.dst2 = predReg(2);
    EvalResult r = evaluate(cmp, true, static_cast<RegVal>(-3), 5);
    EXPECT_TRUE(r.writesDst);
    EXPECT_TRUE(r.writesDst2);
    EXPECT_EQ(r.dstVal, 1u);  // -3 < 5 signed
    EXPECT_EQ(r.dst2Val, 0u);
}

TEST(Evaluate, UnsignedCompare)
{
    Instruction cmp;
    cmp.op = Opcode::kCmp;
    cmp.cond = CmpCond::kLtu;
    cmp.dst = predReg(1);
    cmp.dst2 = predReg(2);
    // -3 as unsigned is huge: not < 5.
    EvalResult r = evaluate(cmp, true, static_cast<RegVal>(-3), 5);
    EXPECT_EQ(r.dstVal, 0u);
    EXPECT_EQ(r.dst2Val, 1u);
}

TEST(Evaluate, AllIntConditions)
{
    Instruction cmp;
    cmp.op = Opcode::kCmp;
    cmp.dst = predReg(1);
    cmp.dst2 = predReg(2);
    auto t = [&](CmpCond c, RegVal a, RegVal b) {
        cmp.cond = c;
        return evaluate(cmp, true, a, b).dstVal == 1;
    };
    EXPECT_TRUE(t(CmpCond::kEq, 5, 5));
    EXPECT_TRUE(t(CmpCond::kNe, 5, 6));
    EXPECT_TRUE(t(CmpCond::kLe, 5, 5));
    EXPECT_TRUE(t(CmpCond::kGt, 6, 5));
    EXPECT_TRUE(t(CmpCond::kGe, 5, 5));
    EXPECT_FALSE(t(CmpCond::kGt, 5, 5));
}

TEST(Evaluate, FloatingPoint)
{
    EXPECT_DOUBLE_EQ(
        dbl(evaluate(alu(Opcode::kFadd), true, bits(1.5), bits(2.25))
                .dstVal),
        3.75);
    EXPECT_DOUBLE_EQ(
        dbl(evaluate(alu(Opcode::kFsub), true, bits(1.5), bits(2.25))
                .dstVal),
        -0.75);
    EXPECT_DOUBLE_EQ(
        dbl(evaluate(alu(Opcode::kFmul), true, bits(3.0), bits(4.0))
                .dstVal),
        12.0);
    EXPECT_DOUBLE_EQ(
        dbl(evaluate(alu(Opcode::kFdiv), true, bits(1.0), bits(4.0))
                .dstVal),
        0.25);
}

TEST(Evaluate, Conversions)
{
    Instruction itof = alu(Opcode::kItof);
    EXPECT_DOUBLE_EQ(
        dbl(evaluate(itof, true, static_cast<RegVal>(-7), 0).dstVal),
        -7.0);
    Instruction ftoi = alu(Opcode::kFtoi);
    EXPECT_EQ(evaluate(ftoi, true, bits(-7.9), 0).dstVal,
              static_cast<RegVal>(-7)); // truncation
}

TEST(Evaluate, FtoiSaturatesAndHandlesNan)
{
    Instruction ftoi = alu(Opcode::kFtoi);
    EXPECT_EQ(evaluate(ftoi, true, bits(1e300), 0).dstVal,
              static_cast<RegVal>(INT64_MAX));
    EXPECT_EQ(evaluate(ftoi, true, bits(-1e300), 0).dstVal,
              static_cast<RegVal>(INT64_MIN));
    EXPECT_EQ(evaluate(ftoi, true, bits(std::nan("")), 0).dstVal, 0u);
}

TEST(Evaluate, PredicateFalseNullifiesEverything)
{
    EvalResult r = evaluate(alu(Opcode::kAdd), false, 7, 5);
    EXPECT_FALSE(r.predTrue);
    EXPECT_FALSE(r.writesDst);
    EXPECT_FALSE(r.isMemAccess);

    Instruction st;
    st.op = Opcode::kSt8;
    st.src1 = intReg(1);
    st.src2 = intReg(2);
    EXPECT_FALSE(evaluate(st, false, 0x100, 9).isMemAccess);
}

TEST(Evaluate, LoadComputesAddress)
{
    Instruction ld;
    ld.op = Opcode::kLd8;
    ld.dst = intReg(1);
    ld.src1 = intReg(2);
    ld.imm = -8;
    EvalResult r = evaluate(ld, true, 0x108, 0);
    EXPECT_TRUE(r.isMemAccess);
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_EQ(r.size, 8u);
    EXPECT_TRUE(r.writesDst);
}

TEST(Evaluate, StoreCarriesValue)
{
    Instruction st;
    st.op = Opcode::kSt4;
    st.src1 = intReg(1);
    st.src2 = intReg(2);
    st.imm = 4;
    EvalResult r = evaluate(st, true, 0x200, 0xDEADBEEF12345678ULL);
    EXPECT_TRUE(r.isMemAccess);
    EXPECT_EQ(r.addr, 0x204u);
    EXPECT_EQ(r.size, 4u);
    EXPECT_EQ(r.storeVal, 0xDEADBEEF12345678ULL);
}

TEST(Evaluate, BranchTakenEqualsPredicate)
{
    Instruction br;
    br.op = Opcode::kBr;
    br.imm = 5;
    EvalResult t = evaluate(br, true, 0, 0);
    EXPECT_TRUE(t.isBranch);
    EXPECT_TRUE(t.taken);
    EvalResult n = evaluate(br, false, 0, 0);
    EXPECT_TRUE(n.isBranch);
    EXPECT_FALSE(n.taken);
}

TEST(LoadExtend, SignAndZeroBehaviour)
{
    EXPECT_EQ(loadExtend(Opcode::kLd8, 0xFFFFFFFF80000000ULL),
              0xFFFFFFFF80000000ULL);
    // ld4 sign-extends the low word.
    EXPECT_EQ(loadExtend(Opcode::kLd4, 0x0000000080000000ULL),
              0xFFFFFFFF80000000ULL);
    EXPECT_EQ(loadExtend(Opcode::kLd4, 0x7FFFFFFFULL), 0x7FFFFFFFULL);
}

TEST(MemSize, Widths)
{
    EXPECT_EQ(memSize(Opcode::kLd4), 4u);
    EXPECT_EQ(memSize(Opcode::kLd8), 8u);
    EXPECT_EQ(memSize(Opcode::kSt4), 4u);
    EXPECT_EQ(memSize(Opcode::kSt8), 8u);
}

TEST(OperandSrc2, SelectsImmediateOrRegister)
{
    Instruction in = alu(Opcode::kAdd);
    EXPECT_EQ(operandSrc2(in, 55), 55u);
    in.src2IsImm = true;
    in.imm = -2;
    EXPECT_EQ(operandSrc2(in, 55), static_cast<RegVal>(-2));
}

} // namespace
