/** @file Unit tests for the register file and slot mapping. */

#include <gtest/gtest.h>

#include "cpu/regfile.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

TEST(RegSlot, DenseAndDisjoint)
{
    EXPECT_EQ(regSlot(intReg(0)), 0);
    EXPECT_EQ(regSlot(intReg(63)), 63);
    EXPECT_EQ(regSlot(fpReg(0)), 64);
    EXPECT_EQ(regSlot(predReg(0)), 128);
    EXPECT_EQ(regSlot(predReg(63)), 191);
    EXPECT_EQ(regSlot(noReg()), -1);
}

TEST(RegSlot, RoundTripsThroughSlotReg)
{
    for (unsigned s = 0; s < kNumRegSlots; ++s)
        EXPECT_EQ(regSlot(slotReg(s)), static_cast<int>(s));
}

TEST(RegFile, StartsZeroed)
{
    RegFile rf;
    EXPECT_EQ(rf.read(intReg(5)), 0u);
    EXPECT_EQ(rf.read(fpReg(5)), 0u);
    EXPECT_FALSE(rf.readPred(predReg(5)));
}

TEST(RegFile, ReadWriteRoundTrip)
{
    RegFile rf;
    rf.write(intReg(3), 0xDEAD);
    EXPECT_EQ(rf.read(intReg(3)), 0xDEADu);
    rf.write(fpReg(3), 0xBEEF);
    EXPECT_EQ(rf.read(fpReg(3)), 0xBEEFu);
    // Same index, different class: independent.
    EXPECT_EQ(rf.read(intReg(3)), 0xDEADu);
}

TEST(RegFile, HardwiredReads)
{
    RegFile rf;
    EXPECT_EQ(rf.read(intReg(0)), 0u);
    EXPECT_EQ(rf.read(fpReg(0)), 0u); // +0.0 bit pattern
    EXPECT_EQ(rf.read(predReg(0)), 1u);
    EXPECT_TRUE(rf.readPred(predReg(0)));
}

TEST(RegFile, HardwiredWritesIgnored)
{
    RegFile rf;
    rf.write(intReg(0), 99);
    rf.write(predReg(0), 0);
    EXPECT_EQ(rf.read(intReg(0)), 0u);
    EXPECT_TRUE(rf.readPred(predReg(0)));
}

TEST(RegFile, PredicateWritesNormalize)
{
    RegFile rf;
    rf.write(predReg(4), 0xFF00);
    EXPECT_EQ(rf.read(predReg(4)), 1u);
    rf.write(predReg(4), 0);
    EXPECT_EQ(rf.read(predReg(4)), 0u);
}

TEST(RegFile, FingerprintTracksContent)
{
    RegFile a, b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    a.write(intReg(7), 1);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b.write(intReg(7), 1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    // Same value in a different register: different fingerprint.
    RegFile c;
    c.write(intReg(8), 1);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(RegFile, SlotAccessors)
{
    RegFile rf;
    rf.setSlotValue(regSlot(intReg(9)), 1234);
    EXPECT_EQ(rf.read(intReg(9)), 1234u);
    EXPECT_EQ(rf.slotValue(regSlot(intReg(9))), 1234u);
}

TEST(RegFile, Reset)
{
    RegFile rf;
    rf.write(intReg(9), 5);
    rf.reset();
    EXPECT_EQ(rf.read(intReg(9)), 0u);
}

} // namespace
