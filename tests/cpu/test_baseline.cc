/** @file Unit tests for the baseline in-order EPIC pipeline. */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/baseline/baseline_cpu.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

CoreConfig
quickConfig()
{
    return CoreConfig();
}

/** Runs and checks architectural equality with the reference. */
RunResult
runAndCheck(const Program &p, const CoreConfig &cfg = quickConfig())
{
    FunctionalCpu ref(p);
    auto fr = ref.run();
    BaselineCpu cpu(p, cfg);
    RunResult r = cpu.run(10'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.instsRetired, fr.instsExecuted);
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
    return r;
}

TEST(Baseline, CycleClassesSumToTotal)
{
    ProgramBuilder b("sum");
    b.movi(intReg(1), 1);
    b.addi(intReg(2), intReg(1), 2);
    b.halt();
    Program p = b.finalize();
    BaselineCpu cpu(p, quickConfig());
    RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.cycleAccounting().total(), r.cycles);
}

TEST(Baseline, GroupStallsAtomically)
{
    // Group 1 holds an independent movi fused with a load consumer:
    // the whole group waits for the load even though the movi has no
    // dependence — the EPIC issue-group stall of Figure 2(a).
    ProgramBuilder b("atomic", /*auto_stop=*/false);
    b.movi(intReg(1), 0x100000);
    b.stop();
    b.ld8(intReg(2), intReg(1), 0); // cold: goes to memory
    b.stop();
    b.addi(intReg(3), intReg(2), 1); // consumer
    b.movi(intReg(4), 7);            // independent, same group
    b.stop();
    b.halt();
    Program p = b.finalize();
    BaselineCpu cpu(p, quickConfig());
    RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
    // The load stall must appear in the accounting.
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kLoadStall), 100u);
    EXPECT_EQ(cpu.archRegs().read(intReg(4)), 7u);
}

TEST(Baseline, LoadUseStallMatchesMissLatency)
{
    ProgramBuilder b("latency", /*auto_stop=*/false);
    b.movi(intReg(1), 0x200000);
    b.stop();
    b.ld8(intReg(2), intReg(1), 0);
    b.stop();
    b.addi(intReg(3), intReg(2), 1);
    b.stop();
    b.halt();
    Program p = b.finalize();
    BaselineCpu cpu(p, quickConfig());
    cpu.run(100000);
    // A cold load goes to memory (145): the consumer group waits
    // just short of that (it dispatches the cycle after the load).
    const auto stall = cpu.cycleAccounting().of(CycleClass::kLoadStall);
    EXPECT_GE(stall, 140u);
    EXPECT_LE(stall, 146u);
}

TEST(Baseline, L1HitCausesNoStallWhenScheduled)
{
    // Consumer scheduled 2 cycles (one group) behind a warmed load:
    // the scheduler separates them and the hit latency is covered.
    ProgramBuilder b("hit");
    b.movi(intReg(1), 0x300000);
    b.ld8(intReg(2), intReg(1), 0); // warm-up access
    b.ld8(intReg(3), intReg(1), 0); // will hit
    b.movi(intReg(5), 1);           // independent filler
    b.addi(intReg(4), intReg(3), 1);
    b.halt();
    Program p = compiler::schedule(b.finalize());
    BaselineCpu cpu(p, quickConfig());
    RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
}

TEST(Baseline, WawStallToggle)
{
    // An in-flight load's destination rewritten by the next group.
    ProgramBuilder b("waw", /*auto_stop=*/false);
    b.movi(intReg(1), 0x400000);
    b.stop();
    b.ld8(intReg(2), intReg(1), 0); // slow producer of r2
    b.stop();
    b.movi(intReg(2), 5); // WAW on r2
    b.stop();
    b.halt();
    Program p = b.finalize();

    CoreConfig waw_on = quickConfig();
    waw_on.wawStall = true;
    BaselineCpu cpu_on(p, waw_on);
    const Cycle with_stall = cpu_on.run(100000).cycles;

    CoreConfig waw_off = quickConfig();
    waw_off.wawStall = false;
    BaselineCpu cpu_off(p, waw_off);
    const Cycle without_stall = cpu_off.run(100000).cycles;

    EXPECT_GT(with_stall, without_stall + 100);
    // Both end with the architecturally-final value.
    EXPECT_EQ(cpu_on.archRegs().read(intReg(2)), 5u);
    EXPECT_EQ(cpu_off.archRegs().read(intReg(2)), 5u);
}

TEST(Baseline, ResourceStallWhenMshrsExhausted)
{
    // More concurrent loads than MSHRs.
    ProgramBuilder b("mshr");
    b.movi(intReg(1), 0x500000);
    for (unsigned i = 0; i < 6; ++i)
        b.ld8(intReg(2 + i), intReg(1), static_cast<std::int64_t>(
                                            i * 8192));
    b.halt();
    Program p = compiler::schedule(b.finalize());
    CoreConfig cfg = quickConfig();
    cfg.mem.maxOutstandingLoads = 2;
    BaselineCpu cpu(p, cfg);
    RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kResourceStall), 0u);
}

TEST(Baseline, MispredictCostsFrontEndCycles)
{
    // A data-dependent 50/50 branch stream mispredicts often.
    ProgramBuilder b("misp");
    b.movi(intReg(1), 0);
    b.movi(intReg(5), 40);
    b.label("loop");
    b.addi(intReg(1), intReg(1),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(2), intReg(1), 13);
    b.andi(intReg(3), intReg(2), 1);
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(3), 1);
    b.br("skip");
    b.pred(predReg(1));
    b.addi(intReg(4), intReg(4), 1);
    b.label("skip");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(3), predReg(4), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(3));
    b.halt();
    Program p = compiler::schedule(b.finalize());
    BaselineCpu cpu(p, quickConfig());
    RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(cpu.stats().mispredicts, 5u);
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kFrontEndStall),
              cpu.stats().mispredicts * 5);
}

TEST(Baseline, PredicationMatchesReference)
{
    ProgramBuilder b("pred");
    b.movi(intReg(1), 3);
    b.cmpi(CmpCond::kLt, predReg(1), predReg(2), intReg(1), 10);
    b.movi(intReg(2), 42);
    b.pred(predReg(1));
    b.movi(intReg(3), 43);
    b.pred(predReg(2));
    b.halt();
    runAndCheck(compiler::schedule(b.finalize()));
}

TEST(Baseline, StoresReachMemory)
{
    ProgramBuilder b("st");
    b.movi(intReg(1), 0x600000);
    b.movi(intReg(2), 99);
    b.st8(intReg(1), 0, intReg(2));
    b.ld8(intReg(3), intReg(1), 0);
    b.halt();
    Program p = compiler::schedule(b.finalize());
    BaselineCpu cpu(p, quickConfig());
    cpu.run(100000);
    EXPECT_EQ(cpu.memState().read64(0x600000), 99u);
    EXPECT_EQ(cpu.archRegs().read(intReg(3)), 99u);
}

TEST(BaselineDeathTest, SecondRunPanics)
{
    ProgramBuilder b("once");
    b.halt();
    Program p = b.finalize();
    BaselineCpu cpu(p, quickConfig());
    cpu.run(1000);
    EXPECT_DEATH(cpu.run(1000), "single-shot");
}

} // namespace
