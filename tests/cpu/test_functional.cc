/** @file Unit tests for the functional reference machine. */

#include <gtest/gtest.h>

#include "cpu/functional/functional_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

TEST(Functional, StraightLineArithmetic)
{
    ProgramBuilder b("arith");
    b.movi(intReg(1), 6);
    b.movi(intReg(2), 7);
    b.mul(intReg(3), intReg(1), intReg(2));
    b.subi(intReg(4), intReg(3), 2);
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    auto r = cpu.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.regs().read(intReg(3)), 42u);
    EXPECT_EQ(cpu.regs().read(intReg(4)), 40u);
    EXPECT_EQ(r.instsExecuted, 5u);
}

TEST(Functional, LoopWithBranch)
{
    ProgramBuilder b("loop");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 10);
    b.label("loop");
    b.add(intReg(1), intReg(1), intReg(2));
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    auto r = cpu.run();
    EXPECT_TRUE(r.halted);
    // 10+9+...+1 = 55.
    EXPECT_EQ(cpu.regs().read(intReg(1)), 55u);
    EXPECT_EQ(r.branchesExecuted, 10u);
    EXPECT_EQ(r.branchesTaken, 9u);
}

TEST(Functional, PredicationNullifies)
{
    ProgramBuilder b("pred");
    b.movi(intReg(1), 5);
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(1), 5);
    b.movi(intReg(2), 111);
    b.pred(predReg(1)); // true: executes
    b.movi(intReg(3), 222);
    b.pred(predReg(2)); // false: nullified
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.regs().read(intReg(2)), 111u);
    EXPECT_EQ(cpu.regs().read(intReg(3)), 0u);
}

TEST(Functional, MemoryRoundTrip)
{
    ProgramBuilder b("mem");
    b.movi(intReg(1), 0x1000);
    b.movi(intReg(2), 0x11223344AABBCCDDLL);
    b.st8(intReg(1), 0, intReg(2));
    b.ld8(intReg(3), intReg(1), 0);
    b.ld4(intReg(4), intReg(1), 0); // sign-extends 0xAABBCCDD
    b.st4(intReg(1), 8, intReg(2));
    b.ld8(intReg(5), intReg(1), 8);
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.regs().read(intReg(3)), 0x11223344AABBCCDDULL);
    EXPECT_EQ(cpu.regs().read(intReg(4)), 0xFFFFFFFFAABBCCDDULL);
    EXPECT_EQ(cpu.regs().read(intReg(5)), 0xAABBCCDDULL);
    EXPECT_EQ(cpu.mem().read64(0x1000), 0x11223344AABBCCDDULL);
}

TEST(Functional, DataImageIsLoaded)
{
    ProgramBuilder b("img");
    b.movi(intReg(1), 0x2000);
    b.ld8(intReg(2), intReg(1), 0);
    b.halt();
    Program p = b.finalize();
    p.poke64(0x2000, 777);
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.regs().read(intReg(2)), 777u);
}

TEST(Functional, GroupReadsObservePreGroupState)
{
    // r1 and r2 exchange is impossible in one group (intra-group RAW
    // is illegal), but write-after-read in one group must read the
    // OLD value.
    ProgramBuilder b("war", /*auto_stop=*/false);
    b.movi(intReg(1), 5);
    b.stop();
    b.addi(intReg(2), intReg(1), 0); // reads r1 = 5
    b.movi(intReg(1), 9);            // same group, writes r1
    b.stop();
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.regs().read(intReg(2)), 5u);
    EXPECT_EQ(cpu.regs().read(intReg(1)), 9u);
}

TEST(Functional, FpPipeline)
{
    ProgramBuilder b("fp");
    b.movi(intReg(1), 10);
    b.itof(fpReg(1), intReg(1));
    b.movi(intReg(2), 4);
    b.itof(fpReg(2), intReg(2));
    b.fdiv(fpReg(3), fpReg(1), fpReg(2));
    b.ftoi(intReg(3), fpReg(3)); // 2.5 truncates to 2
    b.fcmp(CmpCond::kGt, predReg(1), predReg(2), fpReg(3), fpReg(2));
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.regs().read(intReg(3)), 2u);
    EXPECT_FALSE(cpu.regs().readPred(predReg(1))); // 2.5 < 4
    EXPECT_TRUE(cpu.regs().readPred(predReg(2)));
}

TEST(Functional, HaltStopsMidGroup)
{
    ProgramBuilder b("halt", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.halt();
    b.movi(intReg(2), 2); // same group, after the halt: never runs
    b.stop();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    auto r = cpu.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.regs().read(intReg(1)), 1u);
    EXPECT_EQ(cpu.regs().read(intReg(2)), 0u);
    EXPECT_EQ(r.instsExecuted, 2u); // movi + halt
}

TEST(Functional, MaxInstsCapStopsEarly)
{
    ProgramBuilder b("inf");
    b.label("spin");
    b.addi(intReg(1), intReg(1), 1);
    b.br("spin");
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    auto r = cpu.run(100);
    EXPECT_FALSE(r.halted);
    EXPECT_GE(r.instsExecuted, 100u);
}

TEST(Functional, CountsLoadsAndStores)
{
    ProgramBuilder b("counts");
    b.movi(intReg(1), 0x100);
    b.st8(intReg(1), 0, intReg(1));
    b.ld8(intReg(2), intReg(1), 0);
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(2), 0);
    b.ld8(intReg(3), intReg(1), 0);
    b.pred(predReg(1)); // nullified (r2 == 0x100 != 0)
    b.halt();
    const Program p = b.finalize();
    FunctionalCpu cpu(p);
    auto r = cpu.run();
    EXPECT_EQ(r.storesExecuted, 1u);
    EXPECT_EQ(r.loadsExecuted, 1u); // the nullified load not counted
}

TEST(FunctionalDeathTest, InvalidProgramIsFatal)
{
    ProgramBuilder b("bad");
    b.movi(intReg(1), 1); // no halt
    Program p = b.finalize();
    EXPECT_EXIT(FunctionalCpu cpu(p), ::testing::ExitedWithCode(1),
                "invalid program");
}

} // namespace
