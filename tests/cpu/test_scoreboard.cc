/** @file Unit tests for the register scoreboard. */

#include <gtest/gtest.h>

#include "cpu/scoreboard.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

TEST(Scoreboard, FreshRegistersAreReady)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.ready(intReg(5), 0));
    EXPECT_EQ(sb.kindOf(intReg(5)), PendingKind::kNone);
}

TEST(Scoreboard, PendingUntilReadyCycle)
{
    Scoreboard sb;
    sb.setPending(intReg(5), 10, PendingKind::kLoad);
    EXPECT_FALSE(sb.ready(intReg(5), 9));
    EXPECT_TRUE(sb.ready(intReg(5), 10));
    EXPECT_TRUE(sb.ready(intReg(5), 11));
    EXPECT_EQ(sb.readyAt(intReg(5)), 10u);
}

TEST(Scoreboard, TracksProducerKind)
{
    Scoreboard sb;
    sb.setPending(intReg(1), 5, PendingKind::kLoad);
    sb.setPending(fpReg(1), 5, PendingKind::kNonLoad);
    EXPECT_EQ(sb.kindOf(intReg(1)), PendingKind::kLoad);
    EXPECT_EQ(sb.kindOf(fpReg(1)), PendingKind::kNonLoad);
}

TEST(Scoreboard, HardwiredRegistersAlwaysReady)
{
    Scoreboard sb;
    sb.setPending(intReg(0), 100, PendingKind::kLoad);
    sb.setPending(predReg(0), 100, PendingKind::kLoad);
    EXPECT_TRUE(sb.ready(intReg(0), 0));
    EXPECT_TRUE(sb.ready(predReg(0), 0));
}

TEST(Scoreboard, NewerProducerOverwrites)
{
    Scoreboard sb;
    sb.setPending(intReg(3), 100, PendingKind::kLoad);
    sb.setPending(intReg(3), 5, PendingKind::kNonLoad);
    EXPECT_TRUE(sb.ready(intReg(3), 5));
    EXPECT_EQ(sb.kindOf(intReg(3)), PendingKind::kNonLoad);
}

TEST(Scoreboard, ClassesAreIndependent)
{
    Scoreboard sb;
    sb.setPending(intReg(4), 50, PendingKind::kLoad);
    EXPECT_TRUE(sb.ready(fpReg(4), 0));
    EXPECT_TRUE(sb.ready(predReg(4), 0));
}

TEST(Scoreboard, ClearReleasesEverything)
{
    Scoreboard sb;
    sb.setPending(intReg(4), 50, PendingKind::kLoad);
    sb.clear();
    EXPECT_TRUE(sb.ready(intReg(4), 0));
    EXPECT_EQ(sb.kindOf(intReg(4)), PendingKind::kNone);
}

TEST(Scoreboard, UnusedOperandSlotIsReady)
{
    Scoreboard sb;
    EXPECT_TRUE(sb.ready(noReg(), 0));
    EXPECT_EQ(sb.readyAt(noReg()), 0u);
}

} // namespace
