/**
 * @file
 * Fixture coverage for every ffcheck diagnostic: each check is
 * demonstrated by one hand-written bad program that triggers it and
 * one near-miss that legitimately does not.
 */

#include <gtest/gtest.h>

#include "analysis/ffcheck.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::CheckId;
using analysis::Finding;
using analysis::Report;
using analysis::Severity;

Report
checkAsm(const std::string &src)
{
    const isa::Program prog = isa::assembleOrDie(src, "fixture");
    return analysis::check(prog);
}

Report
checkInsts(std::vector<isa::Instruction> insts)
{
    const isa::Program prog("fixture", std::move(insts));
    return analysis::check(prog);
}

bool
has(const Report &rep, CheckId id)
{
    for (const Finding &f : rep.findings) {
        if (f.id == id)
            return true;
    }
    return false;
}

const Finding *
find(const Report &rep, CheckId id)
{
    for (const Finding &f : rep.findings) {
        if (f.id == id)
            return &f;
    }
    return nullptr;
}

// ----- def-before-use -----------------------------------------------

TEST(FfcheckUninit, ReadBeforeWriteIsFlagged)
{
    const Report rep = checkAsm("add r1 = r2, 1\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kUninitRead));
    const Finding *f = find(rep, CheckId::kUninitRead);
    EXPECT_EQ(f->severity, Severity::kWarning);
    EXPECT_EQ(f->inst, 0u);
    EXPECT_EQ(f->srcLine, 1);
}

TEST(FfcheckUninit, NearMissWriteThenReadIsClean)
{
    const Report rep = checkAsm("movi r2 = 7 ;;\n"
                                "add r1 = r2, 1\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kUninitRead));
    EXPECT_TRUE(rep.clean(true));
}

TEST(FfcheckUninit, HardwiredZeroReadIsNotUninit)
{
    // r0 always reads zero by design; using it is not a diagnostic.
    const Report rep = checkAsm("add r1 = r0, 1\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kUninitRead));
}

TEST(FfcheckUninit, PredicateReadBeforeWriteIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "(p3) add r1 = r1, 1\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kUninitPredicate));
    EXPECT_EQ(find(rep, CheckId::kUninitPredicate)->severity,
              Severity::kWarning);
}

TEST(FfcheckUninit, NearMissComparedPredicateIsClean)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.gt p3, p4 = r1, 0 ;;\n"
                                "(p3) add r1 = r1, 1\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kUninitPredicate));
}

// ----- issue-group legality -----------------------------------------

TEST(FfcheckGroups, IntraGroupRawIsFlagged)
{
    // No stop bit: movi and its consumer share one issue group.
    const Report rep = checkAsm("movi r1 = 5\n"
                                "add r2 = r1, 1\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kGroupRaw));
    EXPECT_EQ(find(rep, CheckId::kGroupRaw)->inst, 1u);
    EXPECT_EQ(find(rep, CheckId::kGroupRaw)->srcLine, 2);
}

TEST(FfcheckGroups, NearMissStopBitSeparatesRaw)
{
    const Report rep = checkAsm("movi r1 = 5 ;;\n"
                                "add r2 = r1, 1\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kGroupRaw));
    EXPECT_TRUE(rep.clean(true));
}

TEST(FfcheckGroups, IntraGroupWawIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 5\n"
                                "movi r1 = 6\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kGroupWaw));
}

TEST(FfcheckGroups, NearMissWawAcrossGroupsIsLegal)
{
    const Report rep = checkAsm("movi r1 = 5 ;;\n"
                                "movi r1 = 6\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kGroupWaw));
}

TEST(FfcheckGroups, StoreLoadSharingGroupIsFlagged)
{
    // v2: the pair provably overlaps (same base, same bytes), so the
    // finding upgrades from the conservative group-mem-order to the
    // definite alias-store-order diagnostic.
    const Report rep = checkAsm("movi r1 = 0x1000 ;;\n"
                                "st8 [r1] = r0\n"
                                "ld8 r2 = [r1]\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kAliasStoreOrder));
    EXPECT_FALSE(has(rep, CheckId::kGroupMemOrder));
}

TEST(FfcheckGroups, UnknownBaseStoreLoadPairStaysConservative)
{
    // The load result feeding the second access hides the base, so
    // the pair is only *possibly* conflicting: group-mem-order.
    const Report rep = checkAsm("movi r1 = 0x1000 ;;\n"
                                "ld8 r3 = [r1] ;;\n"
                                "st8 [r3] = r0\n"
                                "ld8 r2 = [r1+0x40]\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kGroupMemOrder));
    EXPECT_FALSE(has(rep, CheckId::kAliasStoreOrder));
}

TEST(FfcheckGroups, DisjointStoreThenLoadBreaksSlotOrderRule)
{
    // Distinct fields off one base: no data hazard, but the machine
    // still forbids any memory op after a store in its group (the
    // two-pass merge replays memory in slot order). Structural
    // group-mem-order, not the overlap diagnostic.
    const Report rep = checkAsm("movi r1 = 0x1000 ;;\n"
                                "st8 [r1] = r0\n"
                                "ld8 r2 = [r1+8]\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kGroupMemOrder));
    EXPECT_FALSE(has(rep, CheckId::kAliasStoreOrder));
}

TEST(FfcheckGroups, ProvablyDisjointLoadThenStoreSharesAGroup)
{
    // The load sits in an earlier slot than the store, so slot order
    // is respected, and the byte intervals are provably disjoint:
    // this grouping is exactly what alias-aware scheduling buys.
    const Report rep = checkAsm("movi r1 = 0x1000 ;;\n"
                                "ld8 r2 = [r1+8]\n"
                                "st8 [r1] = r0\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kGroupMemOrder));
    EXPECT_FALSE(has(rep, CheckId::kAliasStoreOrder));
}

TEST(FfcheckGroups, NearMissStoreThenLoadNextGroup)
{
    const Report rep = checkAsm("movi r1 = 0x1000 ;;\n"
                                "st8 [r1] = r0 ;;\n"
                                "ld8 r2 = [r1]\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kGroupMemOrder));
    EXPECT_FALSE(has(rep, CheckId::kAliasStoreOrder));
}

TEST(FfcheckGroups, OversubscribedAluGroupIsFlagged)
{
    // Six independent ALU writes in one group against five ALU units.
    const Report rep = checkAsm("movi r1 = 1\n"
                                "movi r2 = 2\n"
                                "movi r3 = 3\n"
                                "movi r4 = 4\n"
                                "movi r5 = 5\n"
                                "movi r6 = 6 ;;\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kGroupOversubscribed));
    EXPECT_EQ(find(rep, CheckId::kGroupOversubscribed)->inst, 0u);
}

TEST(FfcheckGroups, NearMissFiveAluOpsFit)
{
    const Report rep = checkAsm("movi r1 = 1\n"
                                "movi r2 = 2\n"
                                "movi r3 = 3\n"
                                "movi r4 = 4\n"
                                "movi r5 = 5 ;;\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kGroupOversubscribed));
    EXPECT_TRUE(rep.clean(true));
}

// ----- control flow -------------------------------------------------

TEST(FfcheckCfg, BranchIntoGroupMiddleIsFlagged)
{
    // 'target' labels the second slot of the first group.
    const Report rep = checkAsm("movi r1 = 1\n"
                                "target:\n"
                                "movi r2 = 2 ;;\n"
                                "br target\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kBranchTarget));
}

TEST(FfcheckCfg, NearMissBranchToGroupLeader)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "target:\n"
                                "movi r2 = 2 ;;\n"
                                "movi r3 = 3 ;;\n"
                                "cmp.eq p1, p2 = r3, 99 ;;\n"
                                "(p1) br target\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kBranchTarget));
    EXPECT_EQ(rep.errors(), 0u);
}

TEST(FfcheckCfg, BranchTargetOutOfRangeIsFlagged)
{
    std::vector<isa::Instruction> insts(2);
    insts[0].op = isa::Opcode::kBr;
    insts[0].imm = 99; // beyond the program
    insts[0].stop = true;
    insts[1].op = isa::Opcode::kHalt;
    insts[1].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_TRUE(has(rep, CheckId::kBranchTarget));
}

TEST(FfcheckCfg, BranchNotGroupFinalIsFlagged)
{
    std::vector<isa::Instruction> insts(3);
    insts[0].op = isa::Opcode::kBr;
    insts[0].imm = 2;
    insts[0].stop = false; // shares its group with the movi below
    insts[1].op = isa::Opcode::kMovi;
    insts[1].dst = isa::intReg(1);
    insts[1].imm = 1;
    insts[1].stop = true;
    insts[2].op = isa::Opcode::kHalt;
    insts[2].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_TRUE(has(rep, CheckId::kBranchNotGroupFinal));
}

TEST(FfcheckCfg, NearMissGroupFinalBranch)
{
    std::vector<isa::Instruction> insts(3);
    insts[0].op = isa::Opcode::kBr;
    insts[0].imm = 2;
    insts[0].stop = true;
    insts[1].op = isa::Opcode::kMovi;
    insts[1].dst = isa::intReg(1);
    insts[1].imm = 1;
    insts[1].stop = true;
    insts[2].op = isa::Opcode::kHalt;
    insts[2].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_FALSE(has(rep, CheckId::kBranchNotGroupFinal));
}

TEST(FfcheckCfg, FallOffEndIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.gt p1, p2 = r1, 0 ;;\n"
                                "(p1) br done\n"
                                "halt ;;\n"
                                "done:\n"
                                "movi r2 = 2\n");
    ASSERT_TRUE(has(rep, CheckId::kFallOffEnd));
    EXPECT_EQ(find(rep, CheckId::kFallOffEnd)->severity,
              Severity::kError);
}

TEST(FfcheckCfg, NearMissEveryPathHalts)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.gt p1, p2 = r1, 0 ;;\n"
                                "(p1) br done\n"
                                "halt ;;\n"
                                "done:\n"
                                "movi r2 = 2\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kFallOffEnd));
    EXPECT_FALSE(has(rep, CheckId::kHaltUnreachable));
    EXPECT_EQ(rep.errors(), 0u);
}

TEST(FfcheckCfg, InfiniteLoopIsFlagged)
{
    // The back-branch is unconditional: halt can never be reached.
    const Report rep = checkAsm("loop:\n"
                                "movi r1 = 1 ;;\n"
                                "br loop\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kHaltUnreachable));
    EXPECT_TRUE(has(rep, CheckId::kUnreachableCode));
}

TEST(FfcheckCfg, NearMissConditionalLoopIsClean)
{
    const Report rep = checkAsm("movi r2 = 10 ;;\n"
                                "loop:\n"
                                "sub r2 = r2, 1 ;;\n"
                                "cmp.gt p1, p2 = r2, 0 ;;\n"
                                "(p1) br loop\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kHaltUnreachable));
    EXPECT_FALSE(has(rep, CheckId::kUnreachableCode));
    EXPECT_TRUE(rep.clean(true));
}

TEST(FfcheckCfg, UnreachableBlockIsAWarningNotError)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "br end\n"
                                "movi r2 = 2 ;;\n" // dead code
                                "end:\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kUnreachableCode));
    EXPECT_EQ(find(rep, CheckId::kUnreachableCode)->severity,
              Severity::kWarning);
    EXPECT_EQ(rep.errors(), 0u);
}

// ----- predicate sanity ---------------------------------------------

TEST(FfcheckPred, AliasedComplementaryPairIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.eq p1, p1 = r1, 0\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kPredPairAliased));
    EXPECT_EQ(find(rep, CheckId::kPredPairAliased)->srcLine, 2);
}

TEST(FfcheckPred, NearMissDistinctPairIsClean)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.eq p1, p2 = r1, 0\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kPredPairAliased));
    EXPECT_EQ(rep.errors(), 0u);
}

TEST(FfcheckPred, NonPredicateDestinationIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "cmp.eq r2, p2 = r1, 0\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kPredDestClass));
}

TEST(FfcheckPred, NearMissPredicateDestinationsAreClean)
{
    const Report rep = checkAsm("movi r1 = 1\n"
                                "fcmp.lt p5, p6 = f0, f0\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kPredDestClass));
}

// ----- structural ---------------------------------------------------

TEST(FfcheckStructural, WriteToHardwiredZeroIsFlagged)
{
    const Report rep = checkAsm("movi r0 = 5\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kWriteHardwired));
}

TEST(FfcheckStructural, NearMissWritableRegisterIsClean)
{
    const Report rep = checkAsm("movi r1 = 5\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kWriteHardwired));
}

TEST(FfcheckStructural, RegisterIndexOutOfRangeIsFlagged)
{
    std::vector<isa::Instruction> insts(2);
    insts[0].op = isa::Opcode::kMovi;
    insts[0].dst = isa::intReg(64); // file holds r0..r63
    insts[0].imm = 1;
    insts[0].stop = true;
    insts[1].op = isa::Opcode::kHalt;
    insts[1].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_TRUE(has(rep, CheckId::kRegOutOfRange));
}

TEST(FfcheckStructural, NearMissHighestRegisterIsLegal)
{
    std::vector<isa::Instruction> insts(2);
    insts[0].op = isa::Opcode::kMovi;
    insts[0].dst = isa::intReg(63);
    insts[0].imm = 1;
    insts[0].stop = true;
    insts[1].op = isa::Opcode::kHalt;
    insts[1].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_FALSE(has(rep, CheckId::kRegOutOfRange));
}

TEST(FfcheckStructural, MissingFinalStopIsFlagged)
{
    std::vector<isa::Instruction> insts(1);
    insts[0].op = isa::Opcode::kHalt;
    insts[0].stop = false;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_TRUE(has(rep, CheckId::kMissingFinalStop));
}

TEST(FfcheckStructural, NearMissFinalStopIsClean)
{
    std::vector<isa::Instruction> insts(1);
    insts[0].op = isa::Opcode::kHalt;
    insts[0].stop = true;
    const Report rep = checkInsts(std::move(insts));
    EXPECT_FALSE(has(rep, CheckId::kMissingFinalStop));
    EXPECT_TRUE(rep.clean(true));
}

TEST(FfcheckStructural, MissingHaltIsFlagged)
{
    const Report rep = checkAsm("movi r1 = 5\n");
    EXPECT_TRUE(has(rep, CheckId::kNoHalt));
}

TEST(FfcheckStructural, EmptyProgramIsFlagged)
{
    const Report rep = checkInsts({});
    EXPECT_TRUE(has(rep, CheckId::kNoHalt));
    EXPECT_GE(rep.errors(), 1u);
}

// ----- constant-propagated memory checks ----------------------------

TEST(FfcheckMemory, StaticallyNullLoadIsFlagged)
{
    // r2 is never written: it propagates as architectural zero.
    const Report rep = checkAsm("ld8 r1 = [r2]\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kNullAccess));
    EXPECT_EQ(find(rep, CheckId::kNullAccess)->severity,
              Severity::kError);
}

TEST(FfcheckMemory, NearMissNonNullConstantAddress)
{
    const Report rep = checkAsm("movi r2 = 0x1000 ;;\n"
                                "ld8 r1 = [r2]\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kNullAccess));
}

TEST(FfcheckMemory, MisalignedConstantStoreIsFlagged)
{
    const Report rep = checkAsm("movi r2 = 0x1004 ;;\n"
                                "st8 [r2] = r0\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kMisalignedAccess));
}

TEST(FfcheckMemory, NearMissFourByteOpToleratesFourAlignment)
{
    // The same address is fine for a 4-byte access.
    const Report rep = checkAsm("movi r2 = 0x1004 ;;\n"
                                "st4 [r2] = r0\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kMisalignedAccess));
}

TEST(FfcheckMemory, MisalignmentThroughAddChainIsFlagged)
{
    // movi/add chain: 0x1000 + 3 = 0x1003, provably misaligned.
    const Report rep = checkAsm("movi r2 = 0x1000 ;;\n"
                                "add r3 = r2, 3 ;;\n"
                                "ld4 r1 = [r3]\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kMisalignedAccess));
}

TEST(FfcheckMemory, NearMissUnknownAddressIsNotFlagged)
{
    // The base comes from a load: not provably constant, no finding.
    const Report rep = checkAsm("movi r2 = 0x1000 ;;\n"
                                "ld8 r3 = [r2] ;;\n"
                                "ld8 r1 = [r3]\n"
                                "halt\n");
    EXPECT_FALSE(has(rep, CheckId::kNullAccess));
    EXPECT_FALSE(has(rep, CheckId::kMisalignedAccess));
}

// ----- reporting ----------------------------------------------------

TEST(FfcheckPressure, NoteCarriesPeakPressure)
{
    const Report rep = checkAsm("movi r1 = 1 ;;\n"
                                "movi r2 = 2 ;;\n"
                                "add r3 = r1, r2\n"
                                "halt\n");
    ASSERT_TRUE(has(rep, CheckId::kRegPressure));
    const Finding *f = find(rep, CheckId::kRegPressure);
    EXPECT_EQ(f->severity, Severity::kNote);
    EXPECT_NE(f->message.find("2 int"), std::string::npos);
}

TEST(FfcheckPressure, NotesDoNotAffectCleanliness)
{
    const Report rep = checkAsm("movi r1 = 1\n"
                                "halt\n");
    EXPECT_TRUE(has(rep, CheckId::kRegPressure));
    EXPECT_TRUE(rep.clean(true));
}

// ----- report plumbing ----------------------------------------------

TEST(FfcheckReport, RenderIncludesSourceLineAndCheckName)
{
    const Report rep = checkAsm("movi r1 = 5\n"
                                "movi r1 = 6\n"
                                "halt\n");
    const std::string text = analysis::render(rep, "prog.s");
    EXPECT_NE(text.find("prog.s:2"), std::string::npos);
    EXPECT_NE(text.find("[group-waw]"), std::string::npos);
}

TEST(FfcheckReport, StrictRejectsWarningsOnly)
{
    const Report rep = checkAsm("add r1 = r2, 1 ;;\n"
                                "movi r3 = 0x100 ;;\n"
                                "st8 [r3] = r1\n"
                                "halt\n");
    EXPECT_EQ(rep.errors(), 0u);
    EXPECT_GE(rep.warnings(), 1u);
    EXPECT_TRUE(rep.clean(false));
    EXPECT_FALSE(rep.clean(true));
}

} // namespace
} // namespace ff
