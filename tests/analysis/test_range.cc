/**
 * @file
 * Unit tests for integer value-range propagation: the interval and
 * power-of-two congruence lattice, widening at loop joins, and the
 * alignment facts the verifier derives for non-constant addresses.
 */

#include <gtest/gtest.h>

#include "analysis/range.hh"
#include "cpu/regfile.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::Cfg;
using analysis::Range;
using analysis::RangeProp;
using analysis::RangeState;

RangeState
zeroState()
{
    RangeState s;
    s.seeded = true;
    s.regs.assign(cpu::kNumRegSlots, Range::constant(0));
    return s;
}

Range
regOf(const RangeState &s, isa::RegId r)
{
    return s.regs[static_cast<std::size_t>(cpu::regSlot(r))];
}

isa::Instruction
aluImm(isa::Opcode op, isa::RegId dst, isa::RegId src1,
       std::int64_t imm)
{
    isa::Instruction in;
    in.op = op;
    in.dst = dst;
    in.src1 = src1;
    in.imm = imm;
    in.src2IsImm = true;
    return in;
}

// ----- lattice cells ------------------------------------------------

TEST(RangeCell, ConstantIsExact)
{
    const Range r = Range::constant(24);
    EXPECT_TRUE(r.isConstant());
    EXPECT_TRUE(r.provablyNonZero());
    EXPECT_TRUE(r.provablyAligned(8));
    EXPECT_FALSE(r.provablyMisaligned(8));
    EXPECT_TRUE(Range::constant(20).provablyMisaligned(8));
    EXPECT_TRUE(Range::constant(0).provablyZero());
}

TEST(RangeCell, TopClaimsNothing)
{
    const Range t = Range::top();
    EXPECT_FALSE(t.provablyZero());
    EXPECT_FALSE(t.provablyNonZero());
    EXPECT_FALSE(t.provablyAligned(8));
    EXPECT_FALSE(t.provablyMisaligned(8));
}

TEST(RangeCell, JoinKeepsCommonCongruence)
{
    Range a = Range::constant(8);
    const Range b = Range::constant(16);
    a.joinInto(b);
    EXPECT_EQ(a.lo, 8u);
    EXPECT_EQ(a.hi, 16u);
    EXPECT_TRUE(a.provablyAligned(8));
    EXPECT_TRUE(a.provablyNonZero()); // lo > 0
}

TEST(RangeCell, JoinWidensAfterRepeatedGrowth)
{
    Range a = Range::constant(0);
    for (std::uint64_t v = 8; v <= 64; v += 8)
        a.joinInto(Range::constant(v));
    // The upper bound must have widened rather than crawling.
    EXPECT_EQ(a.hi, ~std::uint64_t{0});
    EXPECT_EQ(a.lo, 0u);
    // Congruence survives widening: every joined value was 0 mod 8.
    EXPECT_TRUE(a.provablyAligned(8));
}

// ----- transfer function --------------------------------------------

TEST(RangeTransfer, ShiftLeftGainsAlignment)
{
    RangeState s = zeroState();
    // r1 becomes unknown via a load, then r2 = r1 << 3 is 0 mod 8.
    isa::Instruction ld;
    ld.op = isa::Opcode::kLd8;
    ld.dst = isa::intReg(1);
    ld.src1 = isa::intReg(9);
    RangeProp::transfer(ld, &s);
    EXPECT_FALSE(regOf(s, isa::intReg(1)).provablyAligned(2));

    RangeProp::transfer(
        aluImm(isa::Opcode::kShl, isa::intReg(2), isa::intReg(1), 3),
        &s);
    EXPECT_TRUE(regOf(s, isa::intReg(2)).provablyAligned(8));
    EXPECT_FALSE(regOf(s, isa::intReg(2)).isConstant());
}

TEST(RangeTransfer, OrPinsLowBits)
{
    RangeState s = zeroState();
    isa::Instruction ld;
    ld.op = isa::Opcode::kLd8;
    ld.dst = isa::intReg(1);
    ld.src1 = isa::intReg(9);
    RangeProp::transfer(ld, &s);
    RangeProp::transfer(
        aluImm(isa::Opcode::kShl, isa::intReg(2), isa::intReg(1), 3),
        &s);
    RangeProp::transfer(
        aluImm(isa::Opcode::kOr, isa::intReg(2), isa::intReg(2), 4),
        &s);
    // r2 is 4 mod 8 whatever the loaded value was.
    const Range r = regOf(s, isa::intReg(2));
    EXPECT_TRUE(r.provablyMisaligned(8));
    EXPECT_TRUE(r.provablyAligned(4));
    EXPECT_TRUE(r.provablyNonZero());
}

TEST(RangeTransfer, AndWithConstantMaskForcesAlignment)
{
    RangeState s = zeroState();
    isa::Instruction ld;
    ld.op = isa::Opcode::kLd8;
    ld.dst = isa::intReg(1);
    ld.src1 = isa::intReg(9);
    RangeProp::transfer(ld, &s);
    RangeProp::transfer(
        aluImm(isa::Opcode::kAnd, isa::intReg(2), isa::intReg(1),
               0x7FF8),
        &s);
    const Range r = regOf(s, isa::intReg(2));
    EXPECT_TRUE(r.provablyAligned(8));
    EXPECT_LE(r.hi, 0x7FF8u);
}

TEST(RangeTransfer, PredicateDestinationsClampToBoolean)
{
    RangeState s = zeroState();
    isa::Instruction cmp;
    cmp.op = isa::Opcode::kCmp;
    cmp.dst = isa::predReg(1);
    cmp.dst2 = isa::predReg(2);
    cmp.src1 = isa::intReg(1);
    cmp.src2 = isa::intReg(2);
    RangeProp::transfer(cmp, &s);
    EXPECT_LE(regOf(s, isa::predReg(1)).hi, 1u);
    EXPECT_LE(regOf(s, isa::predReg(2)).hi, 1u);
}

TEST(RangeTransfer, PredicatedWriteJoinsWithTheOldValue)
{
    RangeState s = zeroState();
    isa::Instruction in = aluImm(isa::Opcode::kMovi, isa::intReg(3),
                                 isa::noReg(), 8);
    in.qpred = isa::predReg(1);
    RangeProp::transfer(in, &s);
    const Range r = regOf(s, isa::intReg(3));
    // 0 meet 8: interval [0, 8], still 0 mod 8.
    EXPECT_EQ(r.lo, 0u);
    EXPECT_EQ(r.hi, 8u);
    EXPECT_TRUE(r.provablyAligned(8));
}

// ----- whole-program dataflow ---------------------------------------

TEST(RangeDataflow, LoopStrideKeepsCongruenceThroughWidening)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "loop:\n"
                           "ld8 r2 = [r1]\n"
                           "add r1 = r1, 8 ;;\n"
                           "cmp.lt p1, p2 = r1, 0x2000 ;;\n"
                           "(p1) br loop\n"
                           "halt\n",
                           "rp");
    const Cfg cfg(prog);
    const RangeProp rp(cfg);
    // The induction variable's interval widens, but its stride-8
    // congruence is invariant: the load is provably 8-byte aligned.
    const Range addr = rp.effectiveAddress(1);
    EXPECT_FALSE(addr.isConstant());
    EXPECT_TRUE(addr.provablyAligned(8));
    // Nonzero-ness is NOT preserved: widening pushes hi to the top,
    // after which the overflow-sound add drops the interval floor.
    EXPECT_FALSE(addr.provablyNonZero());
}

TEST(RangeDataflow, UnreachableCodeClaimsNothing)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 8 ;;\n"
                           "br end\n"
                           "movi r1 = 4 ;;\n"
                           "end:\n"
                           "halt\n",
                           "rp");
    const Cfg cfg(prog);
    const RangeProp rp(cfg);
    const Range dead = rp.rangeBefore(2, isa::intReg(1));
    EXPECT_FALSE(dead.isConstant());
    EXPECT_FALSE(dead.provablyNonZero());
    // At the reachable join r1 is exactly 8.
    EXPECT_EQ(rp.rangeBefore(3, isa::intReg(1)).lo, 8u);
    EXPECT_EQ(rp.rangeBefore(3, isa::intReg(1)).hi, 8u);
}

TEST(RangeDataflow, NeverWrittenRegisterIsArchitecturalZero)
{
    const isa::Program prog = isa::assembleOrDie("ld8 r1 = [r5]\n"
                                                 "halt\n",
                                                 "rp");
    const Cfg cfg(prog);
    const RangeProp rp(cfg);
    EXPECT_TRUE(rp.rangeBefore(0, isa::intReg(5)).provablyZero());
    EXPECT_TRUE(rp.effectiveAddress(0).provablyZero());
}

} // namespace
} // namespace ff
