/**
 * @file
 * Unit tests for the machine-readable report renderings: the SARIF
 * 2.1.0 log (rule catalog, locations, levels) and the flat JSON
 * diagnostics array, pinned byte-for-byte by a golden fixture.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/ffcheck.hh"
#include "analysis/sarif.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::CheckId;
using analysis::Report;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

Report
checkAsm(const char *src)
{
    return analysis::check(isa::assembleOrDie(src, "prog.s"));
}

TEST(Sarif, RuleCatalogListsEveryDiagnostic)
{
    const Report empty;
    const std::string log = analysis::renderSarif(empty, "prog.s");
    EXPECT_NE(log.find("\"$schema\""), std::string::npos);
    EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(log.find("\"name\": \"ffcheck\""), std::string::npos);
    for (const CheckId id :
         {CheckId::kUninitRead, CheckId::kGroupRaw,
          CheckId::kAliasStoreOrder, CheckId::kGroupMemOrder,
          CheckId::kNullAccess, CheckId::kMisalignedAccess,
          CheckId::kRegPressure}) {
        EXPECT_NE(log.find(std::string("\"id\": \"") +
                           analysis::checkName(id) + "\""),
                  std::string::npos)
            << analysis::checkName(id);
    }
}

TEST(Sarif, FindingsCarryRuleLevelAndLocation)
{
    const Report rep = checkAsm("ld8 r1 = [r2] ;;\n"
                                "halt\n");
    ASSERT_GT(rep.findings.size(), 0u);
    const std::string log = analysis::renderSarif(rep, "prog.s");
    EXPECT_NE(log.find("\"ruleId\": \"uninit-read\""),
              std::string::npos);
    EXPECT_NE(log.find("\"level\": \"warning\""), std::string::npos);
    EXPECT_NE(log.find("\"uri\": \"prog.s\""), std::string::npos);
    EXPECT_NE(log.find("\"startLine\": 1"), std::string::npos);
}

TEST(Sarif, JsonRenderingCountsSeverities)
{
    const Report rep = checkAsm("movi r1 = 0x1001 ;;\n"
                                "ld8 r2 = [r1]\n"
                                "halt\n");
    const std::string js = analysis::renderJson(rep, "prog.s");
    EXPECT_NE(js.find("\"source\": \"prog.s\""), std::string::npos);
    EXPECT_NE(js.find("\"check\": \"misaligned-access\""),
              std::string::npos);
    std::ostringstream errs;
    errs << "\"errors\": " << rep.errors();
    EXPECT_NE(js.find(errs.str()), std::string::npos);
}

TEST(Sarif, EscapesControlAndQuoteCharacters)
{
    Report rep;
    rep.findings.push_back({CheckId::kUninitRead,
                            analysis::Severity::kWarning, 0, 1,
                            "quote \" backslash \\ tab \t end"});
    const std::string log = analysis::renderSarif(rep, "a\"b.s");
    EXPECT_NE(log.find("quote \\\" backslash \\\\ tab \\t end"),
              std::string::npos);
    EXPECT_NE(log.find("a\\\"b.s"), std::string::npos);
}

TEST(Sarif, GoldenFixtureMatchesByteForByte)
{
    const std::string dir =
        std::string(FF_SOURCE_DIR) + "/tests/fixtures/";
    const isa::Program prog =
        isa::assembleOrDie(slurp(dir + "diagnostics.s"),
                           "diagnostics.s");
    const Report rep = analysis::check(prog);
    const std::string log =
        analysis::renderSarif(rep, "diagnostics.s");
    EXPECT_EQ(log, slurp(dir + "diagnostics.sarif.golden"))
        << "--- regenerate with: ffcheck --sarif=... "
           "tests/fixtures/diagnostics.s ---\n"
        << log;
}

TEST(Sarif, GoldenJsonFixtureMatchesByteForByte)
{
    const std::string dir =
        std::string(FF_SOURCE_DIR) + "/tests/fixtures/";
    const isa::Program prog =
        isa::assembleOrDie(slurp(dir + "diagnostics.s"),
                           "diagnostics.s");
    const Report rep = analysis::check(prog);
    const std::string js = analysis::renderJson(rep, "diagnostics.s");
    EXPECT_EQ(js, slurp(dir + "diagnostics.json.golden")) << js;
}

} // namespace
} // namespace ff
