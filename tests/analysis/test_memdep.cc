/**
 * @file
 * Unit tests for the field-sensitive memory-dependence analysis: base
 * resolution through copy chains, byte-interval disjointness, the
 * block-local soundness boundary for instruction origins, and the
 * alias-aware scheduling driver built on it.
 */

#include <gtest/gtest.h>

#include "analysis/ffcheck.hh"
#include "analysis/memdep.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::Cfg;
using analysis::MemDep;
using analysis::ReachingDefs;
using compiler::AliasResult;

unsigned
groupCount(const isa::Program &p)
{
    unsigned n = 0;
    for (const isa::Instruction &in : p.insts())
        n += in.stop ? 1 : 0;
    return n;
}

struct Built
{
    isa::Program prog;
    Cfg cfg;
    ReachingDefs rd;
    MemDep md;

    explicit Built(const char *src)
        : prog(isa::assembleOrDie(src, "md")), cfg(prog), rd(cfg),
          md(cfg, rd)
    {
    }
};

TEST(MemDep, DistinctFieldsOffOneBaseAreDisjoint)
{
    const Built b("movi r1 = 0x1000 ;;\n"
                  "st8 [r1] = r9 ;;\n"
                  "ld8 r2 = [r1+8] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(1, 2), AliasResult::kMustNotAlias);
}

TEST(MemDep, SameBytesMustAlias)
{
    const Built b("movi r1 = 0x1000 ;;\n"
                  "st8 [r1+8] = r9 ;;\n"
                  "ld8 r2 = [r1+8] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(1, 2), AliasResult::kMustAlias);
}

TEST(MemDep, PartialOverlapMustAlias)
{
    const Built b("movi r1 = 0x1000 ;;\n"
                  "st8 [r1] = r9 ;;\n"
                  "ld4 r2 = [r1+4] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(1, 2), AliasResult::kMustAlias);
}

TEST(MemDep, AdjacentNarrowAccessesAreDisjoint)
{
    const Built b("movi r1 = 0x1000 ;;\n"
                  "st4 [r1] = r9 ;;\n"
                  "ld4 r2 = [r1+4] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(1, 2), AliasResult::kMustNotAlias);
}

TEST(MemDep, CopyChainResolvesToTheSameOrigin)
{
    // r3 = r1 + 16 within the same block: [r3] is origin(ld)+16.
    const Built b("ld8 r1 = [r9] ;;\n"
                  "add r3 = r1, 16 ;;\n"
                  "st8 [r3] = r9\n"
                  "ld8 r2 = [r1+16]\n"
                  "ld8 r4 = [r1+8] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(2, 3), AliasResult::kMustAlias);
    // ...and the neighboring field is provably untouched.
    EXPECT_EQ(b.md.alias(2, 4), AliasResult::kMustNotAlias);
}

TEST(MemDep, UnknownBasesMayAlias)
{
    const Built b("ld8 r1 = [r9]\n"
                  "ld8 r2 = [r8] ;;\n"
                  "st8 [r1] = r9\n"
                  "st8 [r2] = r8 ;;\n"
                  "halt\n");
    // Two loaded pointers: nothing provable either way.
    EXPECT_EQ(b.md.alias(2, 3), AliasResult::kMayAlias);
}

TEST(MemDep, InstructionOriginsAcrossBlocksMayAlias)
{
    // Same defining load, but the two accesses sit in different
    // blocks: the def may be a different dynamic instance (loop), so
    // no must-not-alias claim is allowed.
    const Built b("loop:\n"
                  "ld8 r1 = [r9] ;;\n"
                  "st8 [r1] = r8 ;;\n"
                  "cmp.eq p1, p2 = r8, 0 ;;\n"
                  "(p1) br loop\n"
                  "ld8 r2 = [r1+8] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(1, 4), AliasResult::kMayAlias);
}

TEST(MemDep, ConstantOriginsDisjointProgramWide)
{
    // Constant addresses are absolute: cross-block claims are sound.
    const Built b("movi r1 = 0x1000\n"
                  "movi r2 = 0x2000 ;;\n"
                  "st8 [r1] = r9 ;;\n"
                  "cmp.eq p1, p2 = r9, 0 ;;\n"
                  "(p1) br skip\n"
                  "ld8 r3 = [r2] ;;\n"
                  "skip:\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(2, 5), AliasResult::kMustNotAlias);
}

TEST(MemDep, PredicatedBaseWriteBlocksResolution)
{
    // The base has a predicated extra writer: not a unique def.
    const Built b("movi r1 = 0x1000 ;;\n"
                  "cmp.eq p1, p2 = r9, 0 ;;\n"
                  "(p1) movi r1 = 0x2000 ;;\n"
                  "st8 [r1] = r9\n"
                  "ld8 r2 = [r1+8] ;;\n"
                  "halt\n");
    EXPECT_EQ(b.md.alias(3, 4), AliasResult::kMayAlias);
}

TEST(MemDep, AccessBytesMatchOpcodes)
{
    isa::Instruction in;
    in.op = isa::Opcode::kLd4;
    EXPECT_EQ(MemDep::accessBytes(in), 4u);
    in.op = isa::Opcode::kSt8;
    EXPECT_EQ(MemDep::accessBytes(in), 8u);
}

// ----- alias-aware scheduling ---------------------------------------

TEST(MemDepSchedule, DisjointLoadHoistsAboveTheStalledStore)
{
    // The store waits on an add chain; the load is provably disjoint
    // (same base, different field). The conservative chain pins the
    // load one group behind the store; the oracle lets it issue as
    // soon as its address is ready, hiding the load latency under
    // the store's stall.
    const isa::Program seq = isa::sequentialize(
        isa::assembleOrDie("movi r1 = 0x1000\n"
                           "movi r2 = 7\n"
                           "add r3 = r2, 1\n"
                           "add r4 = r3, 1\n"
                           "st8 [r1] = r4\n"
                           "ld8 r5 = [r1+8]\n"
                           "add r6 = r5, 1\n"
                           "halt\n",
                           "hoist"));
    const isa::Program plain = compiler::schedule(seq);
    const isa::Program aliased = analysis::scheduleWithAlias(seq);
    EXPECT_LT(groupCount(aliased), groupCount(plain));

    // The load really did move above the store in the output stream.
    auto posOf = [](const isa::Program &p, bool store) {
        for (InstIdx i = 0; i < p.size(); ++i)
            if (store ? p.inst(i).isStore() : p.inst(i).isLoad())
                return i;
        return p.size();
    };
    EXPECT_LT(posOf(aliased, /*store=*/false),
              posOf(aliased, /*store=*/true));
    EXPECT_GT(posOf(plain, /*store=*/false),
              posOf(plain, /*store=*/true));

    // Both must verify clean.
    EXPECT_EQ(analysis::check(plain).errors(), 0u);
    EXPECT_EQ(analysis::check(aliased).errors(), 0u);
    EXPECT_EQ(analysis::check(aliased).warnings(), 0u);
}

TEST(MemDepSchedule, DisjointLoadThenStorePackIntoOneGroup)
{
    // Load in the earlier slot, provably disjoint store behind it:
    // the pair may legally share a group (slot order keeps the store
    // last), which the conservative chain never allows.
    const isa::Program seq = isa::sequentialize(
        isa::assembleOrDie("movi r1 = 0x1000\n"
                           "ld8 r2 = [r1]\n"
                           "st8 [r1+8] = r0\n"
                           "halt\n",
                           "pack"));
    const isa::Program plain = compiler::schedule(seq);
    const isa::Program aliased = analysis::scheduleWithAlias(seq);
    EXPECT_LT(groupCount(aliased), groupCount(plain));

    EXPECT_EQ(analysis::check(plain).errors(), 0u);
    EXPECT_EQ(analysis::check(aliased).errors(), 0u);
    EXPECT_EQ(analysis::check(aliased).warnings(), 0u);
}

TEST(MemDepSchedule, MayAliasPairsStayOrdered)
{
    // Unknown bases: the oracle must not relax anything, so both
    // schedulers agree bit for bit.
    const isa::Program seq = isa::sequentialize(
        isa::assembleOrDie("ld8 r1 = [r9]\n"
                           "ld8 r2 = [r8] ;;\n"
                           "st8 [r1] = r7\n"
                           "ld8 r3 = [r2]\n"
                           "halt\n",
                           "ord"));
    const isa::Program plain = compiler::schedule(seq);
    const isa::Program aliased = analysis::scheduleWithAlias(seq);
    EXPECT_EQ(plain.instStreamHash(), aliased.instStreamHash());
}

} // namespace
} // namespace ff
