/**
 * @file
 * Integration coverage for the verification wall: everything this
 * repo ships — the ten Table 2 workloads on both input sets, the
 * bundled example programs, and the property-test program generator —
 * must come out of the scheduler ffcheck-clean.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/ffcheck.hh"
#include "compiler/scheduler.hh"
#include "isa/assembler.hh"
#include "support/random_program.hh"
#include "workloads/workload.hh"

namespace ff
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
expectClean(const isa::Program &prog, const std::string &label)
{
    const analysis::Report rep = analysis::check(prog);
    EXPECT_EQ(rep.errors(), 0u)
        << label << ":\n"
        << analysis::render(rep, label);
    EXPECT_EQ(rep.warnings(), 0u)
        << label << ":\n"
        << analysis::render(rep, label);
}

TEST(FfcheckClean, AllWorkloadsVerifyCleanOnBothInputSets)
{
    for (const auto input :
         {workloads::InputSet::kDefault, workloads::InputSet::kAlternate}) {
        const auto suite = workloads::buildAllWorkloads(
            25, compiler::SchedulerConfig(), input);
        ASSERT_EQ(suite.size(), 10u);
        for (const workloads::Workload &w : suite) {
            expectClean(w.program,
                        w.name + "/" + workloads::inputSetName(input));
        }
    }
}

TEST(FfcheckClean, BundledExamplesVerifyCleanWhenScheduled)
{
    for (const char *name : {"dotprod.s", "histogram.s"}) {
        const std::string path =
            std::string(FF_SOURCE_DIR) + "/examples/asm/" + name;
        const isa::Program prog =
            isa::assembleOrDie(slurp(path), name);
        expectClean(compiler::schedule(isa::sequentialize(prog)), name);
    }
}

TEST(FfcheckClean, RandomProgramsAreErrorFree)
{
    // The fuzz generator feeds simulate(), which now verifies at
    // load: its output must never trip an error-severity finding.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const isa::Program prog = testsupport::randomProgram(seed);
        const analysis::Report rep = analysis::check(prog);
        EXPECT_EQ(rep.errors(), 0u)
            << prog.name() << ":\n"
            << analysis::render(rep, prog.name());
    }
}

} // namespace
} // namespace ff
