/**
 * @file
 * Unit tests for whole-program reaching definitions: entry pseudo-
 * definitions, kills, predicated writes as non-kills, joins and the
 * unique-def query the memory-dependence analysis relies on.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/reachdefs.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::Cfg;
using analysis::kEntryDef;
using analysis::ReachingDefs;

struct Built
{
    isa::Program prog;
    Cfg cfg;
    ReachingDefs rd;

    explicit Built(const char *src)
        : prog(isa::assembleOrDie(src, "rd")), cfg(prog), rd(cfg)
    {
    }
};

bool
reaches(const ReachingDefs &rd, InstIdx at, isa::RegId reg,
        std::uint32_t def)
{
    const auto defs = rd.defsReaching(at, reg);
    return std::find(defs.begin(), defs.end(), def) != defs.end();
}

TEST(ReachDefs, NeverWrittenRegisterKeepsTheEntryDef)
{
    const Built b("ld8 r1 = [r5] ;;\n"
                  "halt\n");
    EXPECT_TRUE(b.rd.entryReaches(0, isa::intReg(5)));
    EXPECT_EQ(b.rd.uniqueDef(0, isa::intReg(5)), std::nullopt);
}

TEST(ReachDefs, UnconditionalWriteKillsTheEntryDef)
{
    const Built b("movi r1 = 0x1000 ;;\n"
                  "ld8 r2 = [r1] ;;\n"
                  "halt\n");
    EXPECT_TRUE(b.rd.entryReaches(0, isa::intReg(1)));
    EXPECT_FALSE(b.rd.entryReaches(1, isa::intReg(1)));
    EXPECT_EQ(b.rd.uniqueDef(1, isa::intReg(1)), 0u);
}

TEST(ReachDefs, PredicatedWriteGensWithoutKilling)
{
    const Built b("cmp.eq p1, p2 = r9, 0 ;;\n"
                  "(p1) movi r1 = 7 ;;\n"
                  "ld8 r2 = [r1] ;;\n"
                  "halt\n");
    // Both the predicated write and the entry value may reach.
    EXPECT_TRUE(b.rd.entryReaches(2, isa::intReg(1)));
    EXPECT_TRUE(reaches(b.rd, 2, isa::intReg(1), 1));
    // A predicated single def is never unique.
    EXPECT_EQ(b.rd.uniqueDef(2, isa::intReg(1)), std::nullopt);
}

TEST(ReachDefs, JoinMergesDefsFromBothPaths)
{
    const Built b("cmp.eq p1, p2 = r9, 0 ;;\n"
                  "(p1) br other\n"
                  "movi r1 = 1\n"
                  "br end\n"
                  "other:\n"
                  "movi r1 = 2 ;;\n"
                  "end:\n"
                  "ld8 r2 = [r1]\n"
                  "halt\n");
    EXPECT_TRUE(reaches(b.rd, 5, isa::intReg(1), 2));
    EXPECT_TRUE(reaches(b.rd, 5, isa::intReg(1), 4));
    EXPECT_FALSE(b.rd.entryReaches(5, isa::intReg(1)));
    EXPECT_EQ(b.rd.uniqueDef(5, isa::intReg(1)), std::nullopt);
}

TEST(ReachDefs, LoopBodyDefReachesTheLoopHead)
{
    const Built b("movi r1 = 0 ;;\n"
                  "loop:\n"
                  "add r1 = r1, 1 ;;\n"
                  "cmp.lt p1, p2 = r1, 10 ;;\n"
                  "(p1) br loop\n"
                  "halt\n");
    // At the loop head both the preheader def and the back-edge def
    // of r1 may reach.
    EXPECT_TRUE(reaches(b.rd, 1, isa::intReg(1), 0));
    EXPECT_TRUE(reaches(b.rd, 1, isa::intReg(1), 1));
    EXPECT_EQ(b.rd.uniqueDef(1, isa::intReg(1)), std::nullopt);
    // Straight below the add, it is the unique def.
    EXPECT_EQ(b.rd.uniqueDef(2, isa::intReg(1)), 1u);
}

TEST(ReachDefs, HardwiredZeroNeverCountsAsEntryRead)
{
    const Built b("ld8 r1 = [r0] ;;\n"
                  "halt\n");
    EXPECT_FALSE(b.rd.entryReaches(0, isa::intReg(0)));
}

TEST(ReachDefs, CmpWritesBothPredicateDestinations)
{
    const Built b("cmp.eq p1, p2 = r9, 0 ;;\n"
                  "(p2) movi r1 = 1\n"
                  "halt\n");
    EXPECT_FALSE(b.rd.entryReaches(1, isa::predReg(1)));
    EXPECT_FALSE(b.rd.entryReaches(1, isa::predReg(2)));
    EXPECT_EQ(b.rd.uniqueDef(1, isa::predReg(2)), 0u);
}

TEST(ReachDefs, DefsReachingReportsTheEntrySentinel)
{
    const Built b("ld8 r1 = [r5] ;;\n"
                  "halt\n");
    EXPECT_TRUE(reaches(b.rd, 0, isa::intReg(5), kEntryDef));
}

} // namespace
} // namespace ff
