/**
 * @file
 * Unit tests for the constant-propagation lattice behind ffcheck's
 * null/misalignment diagnostics: the transfer function mirrors
 * cpu::evaluate, joins at CFG merges fall to bottom, and unreachable
 * code never claims a constant.
 */

#include <gtest/gtest.h>

#include "analysis/constprop.hh"
#include "analysis/cfg.hh"
#include "cpu/regfile.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::ConstProp;
using analysis::ConstState;
using analysis::ConstVal;

ConstState
zeroState()
{
    return ConstState(cpu::kNumRegSlots, ConstVal::of(0));
}

ConstVal
valOf(const ConstState &s, isa::RegId r)
{
    return s[static_cast<std::size_t>(cpu::regSlot(r))];
}

isa::Instruction
aluImm(isa::Opcode op, isa::RegId dst, isa::RegId src1,
       std::int64_t imm)
{
    isa::Instruction in;
    in.op = op;
    in.dst = dst;
    in.src1 = src1;
    in.imm = imm;
    in.src2IsImm = true;
    return in;
}

// ----- transfer function --------------------------------------------

TEST(ConstPropTransfer, MoviProducesConstant)
{
    ConstState s = zeroState();
    isa::Instruction in;
    in.op = isa::Opcode::kMovi;
    in.dst = isa::intReg(3);
    in.imm = 0x1234;
    ConstProp::transfer(in, &s);
    EXPECT_EQ(valOf(s, isa::intReg(3)), ConstVal::of(0x1234));
}

TEST(ConstPropTransfer, AddChainFolds)
{
    ConstState s = zeroState();
    ConstProp::transfer(
        aluImm(isa::Opcode::kMovi, isa::intReg(1), isa::noReg(), 0x1000),
        &s);
    ConstProp::transfer(
        aluImm(isa::Opcode::kAdd, isa::intReg(2), isa::intReg(1), 8),
        &s);
    EXPECT_EQ(valOf(s, isa::intReg(2)), ConstVal::of(0x1008));
}

TEST(ConstPropTransfer, ShiftAmountIsMaskedLikeTheCpu)
{
    // cpu::evaluate masks shift counts to 6 bits; 67 behaves as 3.
    ConstState s = zeroState();
    ConstProp::transfer(
        aluImm(isa::Opcode::kMovi, isa::intReg(1), isa::noReg(), 1), &s);
    ConstProp::transfer(
        aluImm(isa::Opcode::kShl, isa::intReg(2), isa::intReg(1), 67),
        &s);
    EXPECT_EQ(valOf(s, isa::intReg(2)), ConstVal::of(8));
}

TEST(ConstPropTransfer, LoadDropsDestinationToBottom)
{
    ConstState s = zeroState();
    isa::Instruction in;
    in.op = isa::Opcode::kLd8;
    in.dst = isa::intReg(4);
    in.src1 = isa::intReg(1);
    ConstProp::transfer(in, &s);
    EXPECT_FALSE(valOf(s, isa::intReg(4)).known);
}

TEST(ConstPropTransfer, PredicatedWriteMeetsOldAndNew)
{
    // (p1) movi r3 = 7 may retain the old value: 0 meet 7 = bottom.
    ConstState s = zeroState();
    isa::Instruction in;
    in.op = isa::Opcode::kMovi;
    in.dst = isa::intReg(3);
    in.imm = 7;
    in.qpred = isa::predReg(1);
    ConstProp::transfer(in, &s);
    EXPECT_FALSE(valOf(s, isa::intReg(3)).known);
}

TEST(ConstPropTransfer, PredicatedRewriteOfSameValueStaysKnown)
{
    ConstState s = zeroState();
    ConstProp::transfer(
        aluImm(isa::Opcode::kMovi, isa::intReg(3), isa::noReg(), 7), &s);
    isa::Instruction in;
    in.op = isa::Opcode::kMovi;
    in.dst = isa::intReg(3);
    in.imm = 7;
    in.qpred = isa::predReg(1);
    ConstProp::transfer(in, &s);
    EXPECT_EQ(valOf(s, isa::intReg(3)), ConstVal::of(7));
}

TEST(ConstPropTransfer, OperandFromBottomGoesToBottom)
{
    ConstState s = zeroState();
    s[static_cast<std::size_t>(cpu::regSlot(isa::intReg(1)))] =
        ConstVal::bottom();
    ConstProp::transfer(
        aluImm(isa::Opcode::kAdd, isa::intReg(2), isa::intReg(1), 8),
        &s);
    EXPECT_FALSE(valOf(s, isa::intReg(2)).known);
}

// ----- whole-program dataflow ---------------------------------------

TEST(ConstPropDataflow, EntryStateIsArchitecturalZero)
{
    const isa::Program prog =
        isa::assembleOrDie("ld8 r1 = [r5]\n"
                           "halt\n",
                           "cp");
    const analysis::Cfg cfg(prog);
    const ConstProp cp(cfg);
    // r5 is never written: it is provably the reset value zero.
    EXPECT_EQ(cp.valueBefore(0, isa::intReg(5)), 0u);
    EXPECT_EQ(cp.effectiveAddress(0), 0u);
}

TEST(ConstPropDataflow, HardwiredRegistersAreConstant)
{
    const isa::Program prog = isa::assembleOrDie("halt\n", "cp");
    const analysis::Cfg cfg(prog);
    const ConstProp cp(cfg);
    EXPECT_EQ(cp.valueBefore(0, isa::intReg(0)), 0u);
    EXPECT_EQ(cp.valueBefore(0, isa::predReg(0)), 1u);
}

TEST(ConstPropDataflow, EffectiveAddressFoldsBaseAndOffset)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r2 = 0x1000 ;;\n"
                           "ld8 r1 = [r2+8]\n"
                           "halt\n",
                           "cp");
    const analysis::Cfg cfg(prog);
    const ConstProp cp(cfg);
    EXPECT_EQ(cp.effectiveAddress(1), 0x1008u);
}

TEST(ConstPropDataflow, LoopJoinFallsToBottom)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0 ;;\n"
                           "loop:\n"
                           "add r1 = r1, 1 ;;\n"
                           "cmp.lt p1, p2 = r1, 10 ;;\n"
                           "(p1) br loop\n"
                           "halt\n",
                           "cp");
    const analysis::Cfg cfg(prog);
    const ConstProp cp(cfg);
    // At the loop head r1 merges 0 (entry) with increments: bottom.
    EXPECT_EQ(cp.valueBefore(1, isa::intReg(1)), std::nullopt);
    // A register untouched on every path stays provably zero there.
    EXPECT_EQ(cp.valueBefore(1, isa::intReg(5)), 0u);
}

TEST(ConstPropDataflow, UnreachableCodeClaimsNoConstants)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 5 ;;\n"
                           "br end\n"
                           "movi r2 = 7 ;;\n"
                           "end:\n"
                           "halt\n",
                           "cp");
    const analysis::Cfg cfg(prog);
    const ConstProp cp(cfg);
    // Instruction 2 is dead; even r1 is not claimed constant there.
    EXPECT_EQ(cp.valueBefore(2, isa::intReg(1)), std::nullopt);
    // At the (reachable) join it is 5 on every incoming path.
    EXPECT_EQ(cp.valueBefore(3, isa::intReg(1)), 5u);
}

} // namespace
} // namespace ff
