/** @file Unit tests for CFG construction and liveness analysis. */

#include <gtest/gtest.h>

#include "analysis/liveness.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

#include "support/random_program.hh"

namespace
{

using namespace ff;
using namespace ff::isa;
using analysis::Liveness;
using analysis::PressureReport;
using analysis::RegSet;
using cpu::regSlot;

bool
liveHas(const RegSet &s, RegId r)
{
    return s.test(static_cast<std::size_t>(regSlot(r)));
}

TEST(Liveness, StraightLineUseDef)
{
    ProgramBuilder b("line");
    b.movi(intReg(1), 5);            // 0: def r1
    b.addi(intReg(2), intReg(1), 1); // 1: use r1, def r2
    b.addi(intReg(3), intReg(2), 1); // 2: use r2, def r3
    b.halt();                        // 3
    Program p = b.finalize();
    Liveness lv(p);

    EXPECT_TRUE(liveHas(lv.liveBefore(1), intReg(1)));
    EXPECT_FALSE(liveHas(lv.liveBefore(2), intReg(1))); // r1 is dead
    EXPECT_TRUE(liveHas(lv.liveBefore(2), intReg(2)));
    EXPECT_FALSE(liveHas(lv.liveBefore(3), intReg(3))); // never read
}

TEST(Liveness, LoopCarriedValueStaysLive)
{
    ProgramBuilder b("loop");
    b.movi(intReg(1), 0);
    b.movi(intReg(2), 5);
    b.label("loop");
    b.add(intReg(1), intReg(1), intReg(2)); // r1, r2 loop-carried
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);

    // At the loop head, both carried registers are live.
    const RegSet &head = lv.liveIn(lv.cfg().blockIndexOf(2));
    EXPECT_TRUE(liveHas(head, intReg(1)));
    EXPECT_TRUE(liveHas(head, intReg(2)));
}

TEST(Liveness, BranchSuccessorsAndFallThrough)
{
    ProgramBuilder b("cfg");
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(9), 0); // 0
    b.br("taken");                                              // 1
    b.pred(predReg(1));
    b.movi(intReg(1), 1); // 2: fall-through block
    b.label("taken");
    b.movi(intReg(2), 2); // 3
    b.halt();             // 4
    Program p = b.finalize();
    Liveness lv(p);

    // The branch block has two successors.
    EXPECT_EQ(lv.cfg().blockOf(1).succs.size(), 2u);
}

TEST(Liveness, UnconditionalBranchHasNoFallThrough)
{
    ProgramBuilder b("uncond");
    b.movi(intReg(1), 1);
    b.br("end"); // p0-qualified: always taken
    b.movi(intReg(2), 2);
    b.label("end");
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);
    EXPECT_EQ(lv.cfg().blockOf(1).succs.size(), 1u);
}

TEST(Liveness, HaltBlockHasNoSuccessors)
{
    ProgramBuilder b("h");
    b.movi(intReg(1), 1);
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);
    EXPECT_TRUE(lv.cfg().blockOf(1).succs.empty());
}

TEST(Liveness, PredicatedWriteIsNotAKill)
{
    // r1's incoming value survives a predicated overwrite, so it
    // must remain live across it.
    ProgramBuilder b("predw");
    b.movi(intReg(1), 5);                      // 0
    b.cmpi(CmpCond::kEq, predReg(1), predReg(2), intReg(9), 0); // 1
    b.movi(intReg(1), 9);                      // 2 (p1) conditional
    b.pred(predReg(1));
    b.addi(intReg(3), intReg(1), 0);           // 3: reads r1
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);
    EXPECT_TRUE(liveHas(lv.liveBefore(2), intReg(1)));
}

TEST(Liveness, UnconditionalWriteKills)
{
    ProgramBuilder b("kill");
    b.movi(intReg(1), 5); // 0
    b.movi(intReg(1), 9); // 1: kills the first value
    b.addi(intReg(3), intReg(1), 0);
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);
    EXPECT_FALSE(liveHas(lv.liveBefore(1), intReg(1)));
}

TEST(Liveness, HardwiredRegistersNeverLive)
{
    ProgramBuilder b("hw");
    b.addi(intReg(1), intReg(0), 1); // reads r0
    b.halt();
    Program p = b.finalize();
    Liveness lv(p);
    EXPECT_FALSE(liveHas(lv.liveBefore(0), intReg(0)));
}

TEST(Liveness, SharedCfgConstructorMatchesOwned)
{
    ProgramBuilder b("shared");
    b.movi(intReg(1), 3);
    b.addi(intReg(2), intReg(1), 1);
    b.halt();
    Program p = b.finalize();
    const analysis::Cfg cfg(p);
    Liveness fromCfg(cfg);
    Liveness fromProg(p);
    for (std::size_t blk = 0; blk < cfg.numBlocks(); ++blk) {
        EXPECT_EQ(fromCfg.liveIn(blk), fromProg.liveIn(blk));
        EXPECT_EQ(fromCfg.liveOut(blk), fromProg.liveOut(blk));
    }
}

TEST(Liveness, PressureCountsClassesSeparately)
{
    ProgramBuilder b("press");
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.itof(fpReg(1), intReg(1));
    b.itof(fpReg(2), intReg(2));
    b.fadd(fpReg(3), fpReg(1), fpReg(2));
    b.add(intReg(3), intReg(1), intReg(2));
    b.ftoi(intReg(4), fpReg(3));
    b.add(intReg(5), intReg(3), intReg(4));
    b.movi(intReg(9), 0x100);
    b.st8(intReg(9), 0, intReg(5));
    b.halt();
    Program p = b.finalize();
    const PressureReport r = Liveness(p).pressure();
    EXPECT_GE(r.maxLiveInt, 2u);
    EXPECT_GE(r.maxLiveFp, 2u);
    EXPECT_TRUE(r.fits());
}

TEST(Liveness, RandomProgramsFitTheRegisterFiles)
{
    for (std::uint64_t seed = 700; seed < 712; ++seed) {
        const Program p = ff::testsupport::randomProgram(seed);
        const PressureReport r = Liveness(p).pressure();
        EXPECT_TRUE(r.fits()) << "seed " << seed;
    }
}

class WorkloadPressure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadPressure, EveryKernelFitsTheRegisterFiles)
{
    const workloads::Workload w = workloads::buildWorkload(GetParam(), 3);
    const PressureReport r = Liveness(w.program).pressure();
    EXPECT_TRUE(r.fits())
        << "int " << r.maxLiveInt << " fp " << r.maxLiveFp << " pred "
        << r.maxLivePred;
    // Sanity: the kernels genuinely use registers.
    EXPECT_GE(r.maxLiveInt, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadPressure,
    ::testing::ValuesIn(workloads::workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

} // namespace
