/**
 * @file
 * Property tests for alias-aware scheduling: over randomly generated
 * programs, scheduling with the memory-dependence oracle must keep
 * the program ffcheck-clean in strict mode and leave the
 * architectural outcome (registers, memory, checksum) bit-identical
 * to the conservative schedule.
 */

#include <gtest/gtest.h>

#include "analysis/ffcheck.hh"
#include "analysis/memdep.hh"
#include "sim/harness.hh"
#include "support/random_program.hh"

namespace ff
{
namespace
{

constexpr std::uint64_t kFirstSeed = 40;
constexpr std::uint64_t kNumSeeds = 10;

TEST(PropertySched, AliasAwareSchedulesVerifyStrict)
{
    for (std::uint64_t seed = kFirstSeed;
         seed < kFirstSeed + kNumSeeds; ++seed) {
        const isa::Program seq =
            isa::sequentialize(testsupport::randomProgram(seed));
        const isa::Program plain = compiler::schedule(seq);
        const isa::Program aliased = analysis::scheduleWithAlias(seq);

        const analysis::Report prep = analysis::check(plain);
        EXPECT_TRUE(prep.clean(/*strict=*/true))
            << "seed " << seed << " plain:\n"
            << analysis::render(prep, "plain");
        const analysis::Report arep = analysis::check(aliased);
        EXPECT_TRUE(arep.clean(/*strict=*/true))
            << "seed " << seed << " aliased:\n"
            << analysis::render(arep, "aliased");
    }
}

TEST(PropertySched, AliasAwareSchedulesPreserveArchitecturalState)
{
    for (std::uint64_t seed = kFirstSeed;
         seed < kFirstSeed + kNumSeeds; ++seed) {
        const isa::Program seq =
            isa::sequentialize(testsupport::randomProgram(seed));
        const isa::Program plain = compiler::schedule(seq);
        const isa::Program aliased = analysis::scheduleWithAlias(seq);

        const sim::FunctionalOutcome ref = sim::runFunctional(plain);
        const sim::FunctionalOutcome got = sim::runFunctional(aliased);
        ASSERT_TRUE(ref.result.halted) << "seed " << seed;
        ASSERT_TRUE(got.result.halted) << "seed " << seed;
        EXPECT_EQ(ref.regFingerprint, got.regFingerprint)
            << "seed " << seed;
        EXPECT_EQ(ref.memFingerprint, got.memFingerprint)
            << "seed " << seed;
        EXPECT_EQ(ref.checksum, got.checksum) << "seed " << seed;
        EXPECT_EQ(ref.result.instsExecuted, got.result.instsExecuted)
            << "seed " << seed;
    }
}

TEST(PropertySched, OracleOnlyEverTightensTheSchedule)
{
    // Pruning constraints can only shorten (or keep) the group count.
    for (std::uint64_t seed = kFirstSeed;
         seed < kFirstSeed + kNumSeeds; ++seed) {
        const isa::Program seq =
            isa::sequentialize(testsupport::randomProgram(seed));
        auto groups = [](const isa::Program &p) {
            unsigned n = 0;
            for (const isa::Instruction &in : p.insts())
                n += in.stop ? 1 : 0;
            return n;
        };
        EXPECT_LE(groups(analysis::scheduleWithAlias(seq)),
                  groups(compiler::schedule(seq)))
            << "seed " << seed;
    }
}

} // namespace
} // namespace ff
