/**
 * @file
 * Unit tests for the static stall predictor: the analytical model of
 * the baseline core's whole-group issue stalls, with bubbles
 * attributed to the producer that pinned the group.
 */

#include <gtest/gtest.h>

#include "analysis/stallpred.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::Cfg;
using analysis::PredictedBlock;
using analysis::StallPredictor;
using analysis::StallPrediction;

const PredictedBlock &
blockContaining(const StallPrediction &p, InstIdx i)
{
    for (const PredictedBlock &b : p.blocks) {
        if (i >= b.begin && i < b.end)
            return b;
    }
    ADD_FAILURE() << "no block contains inst " << i;
    return p.blocks.front();
}

TEST(StallPred, IndependentGroupsRunBackToBack)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 1 ;;\n"
                           "movi r2 = 2 ;;\n"
                           "movi r3 = 3 ;;\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    const StallPrediction p = sp.predict(3.0);
    EXPECT_DOUBLE_EQ(p.totalLoadStall(), 0.0);
    const PredictedBlock &b = p.blocks.front();
    EXPECT_DOUBLE_EQ(b.cycles, static_cast<double>(b.groups));
}

TEST(StallPred, LoadUseBubbleMatchesTheLatency)
{
    // ld8 issues in its own group; the consumer's group waits until
    // the value is back: latency L costs L - 1 bubbles.
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "ld8 r2 = [r1] ;;\n"
                           "add r3 = r2, 1 ;;\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    for (const double lat : {1.0, 3.0, 12.0}) {
        const StallPrediction p = sp.predict(lat);
        const PredictedBlock &b = blockContaining(p, 2);
        EXPECT_DOUBLE_EQ(b.loadStall, lat - 1.0) << "lat " << lat;
        EXPECT_DOUBLE_EQ(p.loadStallByInst[1], lat - 1.0)
            << "lat " << lat;
        EXPECT_DOUBLE_EQ(b.otherStall, 0.0);
    }
}

TEST(StallPred, IndependentWorkHidesTheLoadLatency)
{
    // Four issue slots of unrelated work between the load's group and
    // its use cover a 4-cycle load completely.
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "ld8 r2 = [r1]\n"
                           "movi r4 = 4 ;;\n"
                           "movi r5 = 5 ;;\n"
                           "movi r6 = 6 ;;\n"
                           "movi r7 = 7 ;;\n"
                           "add r3 = r2, 1 ;;\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    EXPECT_DOUBLE_EQ(sp.predict(4.0).totalLoadStall(), 0.0);
    // A longer load still leaks the uncovered remainder.
    EXPECT_DOUBLE_EQ(sp.predict(6.0).totalLoadStall(), 2.0);
}

TEST(StallPred, AttributionPicksTheGatingLoad)
{
    // Two loads feed one consumer; the second one (same latency,
    // issued later) is the gate.
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "ld8 r2 = [r1] ;;\n"
                           "ld8 r3 = [r1+8] ;;\n"
                           "add r4 = r2, r3 ;;\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    const StallPrediction p = sp.predict(5.0);
    EXPECT_DOUBLE_EQ(p.loadStallByInst[1], 0.0);
    EXPECT_GT(p.loadStallByInst[2], 0.0);
}

TEST(StallPred, NonLoadLatencyIsNotLoadStall)
{
    // A multi-cycle FP producer stalls its consumer, but those
    // bubbles are attributed to otherStall.
    const isa::Program prog =
        isa::assembleOrDie("itof f1 = r1 ;;\n"
                           "fmul f2 = f1, f1 ;;\n"
                           "fadd f3 = f2, f1 ;;\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    const StallPrediction p = sp.predict(3.0);
    EXPECT_DOUBLE_EQ(p.totalLoadStall(), 0.0);
    if (prog.inst(1).execLatency() > 1)
        EXPECT_GT(blockContaining(p, 2).otherStall, 0.0);
}

TEST(StallPred, PerBlockCostsAreIndependent)
{
    const isa::Program prog =
        isa::assembleOrDie("movi r1 = 0x1000 ;;\n"
                           "loop:\n"
                           "ld8 r2 = [r1] ;;\n"
                           "add r3 = r2, 1 ;;\n"
                           "cmp.lt p1, p2 = r3, 100 ;;\n"
                           "(p1) br loop\n"
                           "halt\n",
                           "sp");
    const Cfg cfg(prog);
    const StallPredictor sp(cfg);
    const StallPrediction p = sp.predict(3.0);
    // The loop body block carries the load-use bubble each iteration.
    const PredictedBlock &body = blockContaining(p, 1);
    EXPECT_DOUBLE_EQ(body.loadStall, 2.0);
    EXPECT_GE(body.cycles, static_cast<double>(body.groups));
}

} // namespace
} // namespace ff
