/**
 * @file
 * Unit tests for the generic dataflow engine, instantiated with two
 * deliberately tiny policies (forward reachability, backward
 * can-reach-halt) so solver behavior is visible independent of the
 * production analyses built on it.
 */

#include <gtest/gtest.h>

#include "analysis/dataflow.hh"
#include "isa/assembler.hh"

namespace ff
{
namespace
{

using analysis::Cfg;
using analysis::DataflowSolver;
using analysis::Direction;

/** Boxed bool: std::vector<bool>'s proxy references cannot back a
 *  solver State, so the test lattice wraps the flag in a struct. */
struct Flag
{
    bool v = false;
};

/** Forward may-analysis: "some path from the entry reaches here". */
struct ReachablePolicy
{
    using State = Flag;
    static constexpr Direction kDirection = Direction::kForward;

    State boundaryState() const { return {true}; }
    State initialState() const { return {false}; }

    bool
    meetInto(State &into, const State &from) const
    {
        const bool changed = from.v && !into.v;
        into.v = into.v || from.v;
        return changed;
    }

    void
    transferBlock(const Cfg &, std::size_t, State &) const
    {
    }
};

/** Backward may-analysis: "some path from here reaches a halt". */
struct ReachesHaltPolicy
{
    using State = Flag;
    static constexpr Direction kDirection = Direction::kBackward;

    State boundaryState() const { return {true}; }
    State initialState() const { return {false}; }

    bool
    meetInto(State &into, const State &from) const
    {
        const bool changed = from.v && !into.v;
        into.v = into.v || from.v;
        return changed;
    }

    void
    transferBlock(const Cfg &cfg, std::size_t b, State &state) const
    {
        // Only a block actually ending in halt originates the fact;
        // boundary blocks that merely lack successors do not.
        const analysis::CfgBlock &blk = cfg.blocks()[b];
        bool halts = false;
        for (InstIdx i = blk.begin; i < blk.end; ++i)
            halts = halts || cfg.program().insts()[i].isHalt();
        state.v = state.v || halts;
    }
};

isa::Program
asmProg(const char *src)
{
    return isa::assembleOrDie(src, "df");
}

TEST(Dataflow, ForwardReachabilityMarksEveryBlockOfALoop)
{
    const isa::Program p = asmProg("movi r1 = 0 ;;\n"
                                   "loop:\n"
                                   "add r1 = r1, 1 ;;\n"
                                   "cmp.lt p1, p2 = r1, 10 ;;\n"
                                   "(p1) br loop\n"
                                   "halt\n");
    const Cfg cfg(p);
    const DataflowSolver<ReachablePolicy> solver(cfg, ReachablePolicy{});
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_TRUE(solver.out(b).v) << "block " << b;
}

TEST(Dataflow, ForwardInitialStateIsKeptByUnreachableBlocks)
{
    const isa::Program p = asmProg("br end\n"
                                   "movi r1 = 1 ;;\n"
                                   "end:\n"
                                   "halt\n");
    const Cfg cfg(p);
    const DataflowSolver<ReachablePolicy> solver(cfg, ReachablePolicy{});
    // The block holding the skipped movi never meets the boundary.
    const std::size_t dead = cfg.blockIndexOf(1);
    EXPECT_FALSE(solver.in(dead).v);
    EXPECT_FALSE(solver.out(dead).v);
    EXPECT_TRUE(solver.out(cfg.blockIndexOf(2)).v);
}

TEST(Dataflow, BackwardFactsPropagateAgainstControlFlow)
{
    const isa::Program p = asmProg("movi r1 = 0 ;;\n"
                                   "loop:\n"
                                   "add r1 = r1, 1 ;;\n"
                                   "cmp.lt p1, p2 = r1, 10 ;;\n"
                                   "(p1) br loop\n"
                                   "halt\n");
    const Cfg cfg(p);
    const DataflowSolver<ReachesHaltPolicy> solver(cfg,
                                                   ReachesHaltPolicy{});
    // out() is the block-entry state for a backward analysis: every
    // block can fall out of the loop and reach the final halt.
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b)
        EXPECT_TRUE(solver.out(b).v) << "block " << b;
}

TEST(Dataflow, BackwardInfiniteLoopNeverReachesHalt)
{
    const isa::Program p = asmProg("movi r1 = 0 ;;\n"
                                   "spin:\n"
                                   "add r1 = r1, 1 ;;\n"
                                   "br spin\n"
                                   "halt\n");
    const Cfg cfg(p);
    const DataflowSolver<ReachesHaltPolicy> solver(cfg,
                                                   ReachesHaltPolicy{});
    EXPECT_FALSE(solver.out(cfg.blockIndexOf(1)).v);
    EXPECT_TRUE(solver.out(cfg.blockIndexOf(3)).v);
}

} // namespace
} // namespace ff
