/**
 * @file
 * Tests of the core-kernel layer: the model factory (the single
 * construction path and its 2Pre regroup override) and the
 * CoreObserver seam (event counts agree with the run's own results
 * and the model's statistics, across models, via TraceObserver).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cpu/core/core_base.hh"
#include "cpu/core/model_factory.hh"
#include "cpu/core/trace_observer.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/model_stats.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;

TEST(ModelFactory, KindNamesAreTheFigure6Spellings)
{
    EXPECT_STREQ(cpuKindName(CpuKind::kBaseline), "base");
    EXPECT_STREQ(cpuKindName(CpuKind::kTwoPass), "2P");
    EXPECT_STREQ(cpuKindName(CpuKind::kTwoPassRegroup), "2Pre");
    EXPECT_STREQ(cpuKindName(CpuKind::kRunahead), "runahead");
}

TEST(ModelFactory, EveryKindBuildsACorrectModel)
{
    const workloads::Workload w = workloads::buildWorkload("130.li", 3);
    FunctionalCpu ref(w.program);
    const auto fr = ref.run();
    ASSERT_TRUE(fr.halted);

    for (unsigned k = 0; k < kNumCpuKinds; ++k) {
        const CpuKind kind = static_cast<CpuKind>(k);
        auto model = makeModel(kind, w.program, CoreConfig());
        ASSERT_NE(model, nullptr) << cpuKindName(kind);
        const RunResult r = model->run(20'000'000);
        ASSERT_TRUE(r.halted) << cpuKindName(kind);
        EXPECT_EQ(model->archRegs().fingerprint(),
                  ref.regs().fingerprint())
            << cpuKindName(kind);
        EXPECT_EQ(model->memState().fingerprint(),
                  ref.mem().fingerprint())
            << cpuKindName(kind);
    }
}

TEST(ModelFactory, RegroupKindAppliesTheOverride)
{
    // The factory's only config rewrite: kTwoPassRegroup forces
    // regrouping on even when the caller's config left it off.
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", 3);
    CoreConfig cfg; // regroup off by default

    auto plain = makeModel(CpuKind::kTwoPass, w.program, cfg);
    auto regroup = makeModel(CpuKind::kTwoPassRegroup, w.program, cfg);
    ASSERT_TRUE(plain->run(20'000'000).halted);
    ASSERT_TRUE(regroup->run(20'000'000).halted);

    ModelStats mp, mr;
    plain->collectStats(mp);
    regroup->collectStats(mr);
    EXPECT_EQ(mp.twopass.regroupedGroups, 0u);
    EXPECT_GT(mr.twopass.regroupedGroups, 0u);
}

TEST(CoreObserverSeam, FlushKindNamesAreStable)
{
    EXPECT_STREQ(flushKindName(FlushKind::kBDet), "bdet");
    EXPECT_STREQ(flushKindName(FlushKind::kConflict), "conflict");
}

/**
 * Every enumerator of the three exported name tables must carry a
 * real, unique name: the JSON metrics schema keys documents by these
 * strings, so an enumerator added without a name (the "?" fallback)
 * or colliding with an existing one is a schema break. This is the
 * CI tripwire the name-table headers point at.
 */
TEST(NameTables, EveryEnumeratorHasAUniqueName)
{
    const auto check = [](const std::vector<const char *> &names,
                          const char *table) {
        std::set<std::string> seen;
        for (const char *n : names) {
            EXPECT_STRNE(n, "?") << table << " has a nameless "
                                    "enumerator";
            EXPECT_TRUE(seen.insert(n).second)
                << table << " name '" << n << "' is duplicated";
        }
    };

    std::vector<const char *> cycle_names;
    for (unsigned c = 0; c < kNumCycleClasses; ++c)
        cycle_names.push_back(
            cycleClassName(static_cast<CycleClass>(c)));
    check(cycle_names, "CycleClass");

    std::vector<const char *> defer_names;
    for (unsigned r = 0; r < kNumDeferReasons; ++r)
        defer_names.push_back(
            deferReasonName(static_cast<DeferReason>(r)));
    check(defer_names, "DeferReason");

    std::vector<const char *> flush_names;
    for (unsigned k = 0; k < kNumFlushKinds; ++k)
        flush_names.push_back(
            flushKindName(static_cast<FlushKind>(k)));
    check(flush_names, "FlushKind");
}

/** Out-of-range values render as the "?" sentinel, never crash. */
TEST(NameTables, OutOfRangeValuesRenderAsSentinel)
{
    EXPECT_STREQ(
        cycleClassName(static_cast<CycleClass>(kNumCycleClasses)),
        "?");
    EXPECT_STREQ(
        deferReasonName(static_cast<DeferReason>(kNumDeferReasons)),
        "?");
    EXPECT_STREQ(
        flushKindName(static_cast<FlushKind>(kNumFlushKinds)), "?");
}

/** The snake_case spellings the schema pins, spelled out. */
TEST(NameTables, DeferReasonNamesAreTheSchemaSpellings)
{
    EXPECT_STREQ(deferReasonName(DeferReason::kNone), "none");
    EXPECT_STREQ(deferReasonName(DeferReason::kOperandInvalid),
                 "operand_invalid");
    EXPECT_STREQ(deferReasonName(DeferReason::kOperandInFlight),
                 "operand_in_flight");
    EXPECT_STREQ(deferReasonName(DeferReason::kMshrFull),
                 "mshr_full");
    EXPECT_STREQ(deferReasonName(DeferReason::kStoreBufferFull),
                 "store_buffer_full");
    EXPECT_STREQ(deferReasonName(DeferReason::kConflictRetry),
                 "conflict_retry");
    EXPECT_STREQ(deferReasonName(DeferReason::kNoFunctionalUnit),
                 "no_functional_unit");
}

/**
 * Attaches a TraceObserver to each model through the CoreBase seam
 * and cross-checks the event counts against the run result and the
 * model's own statistics. This pins the hook-site contract: one
 * onCycle per simulated cycle, slot counts that match retirement,
 * and (for two-pass) defer/flush events agreeing with the stats.
 */
TEST(CoreObserverSeam, CountsAgreeWithRunResultsAcrossModels)
{
    const workloads::Workload w =
        workloads::buildWorkload("181.mcf", 3);

    for (unsigned k = 0; k < kNumCpuKinds; ++k) {
        const CpuKind kind = static_cast<CpuKind>(k);
        TraceObserver obs;
        auto model = makeModel(kind, w.program, CoreConfig());
        model->asCoreBase()->setObserver(&obs);
        const RunResult r = model->run(20'000'000);
        ASSERT_TRUE(r.halted) << cpuKindName(kind);

        EXPECT_EQ(obs.counts().cycles, r.cycles) << cpuKindName(kind);
        // The baseline reports whole groups even when a halt cuts the
        // slot walk short, so slots may exceed retires; never fewer.
        EXPECT_GE(obs.counts().slotsRetired, r.instsRetired)
            << cpuKindName(kind);
        EXPECT_GE(obs.counts().groupRetires, 1u) << cpuKindName(kind);

        ModelStats ms;
        model->collectStats(ms);
        if (kind == CpuKind::kTwoPass ||
            kind == CpuKind::kTwoPassRegroup) {
            EXPECT_EQ(obs.counts().defers, ms.twopass.deferred)
                << cpuKindName(kind);
            EXPECT_EQ(obs.counts().flushes,
                      ms.twopass.bDetMispredicts +
                          ms.twopass.storeConflictFlushes)
                << cpuKindName(kind);
        } else {
            EXPECT_EQ(obs.counts().defers, 0u) << cpuKindName(kind);
            EXPECT_EQ(obs.counts().flushes, 0u) << cpuKindName(kind);
        }
    }
}

/** A detached observer sees nothing; the run is unaffected. */
TEST(CoreObserverSeam, DetachStopsEventDelivery)
{
    const workloads::Workload w = workloads::buildWorkload("130.li", 3);
    TraceObserver obs;
    auto model = makeModel(CpuKind::kTwoPass, w.program, CoreConfig());
    CoreBase &core = *model->asCoreBase();
    core.setObserver(&obs);
    core.setObserver(nullptr);
    ASSERT_TRUE(model->run(20'000'000).halted);
    EXPECT_EQ(obs.counts().cycles, 0u);
    EXPECT_EQ(obs.counts().groupRetires, 0u);
    EXPECT_EQ(obs.counts().defers, 0u);
}

} // namespace
