/**
 * @file
 * PipeViewObserver and ffpipe container semantics: the event stream
 * an observer records, the run-length cycle-class encoding, the event
 * cap, the lifetime reconstruction (FIFO retire resolution and the
 * two flush semantics), the binary round trip, and the rejection of
 * truncated/corrupt containers.
 */

#include <gtest/gtest.h>

#include "cpu/core/pipeview_observer.hh"
#include "sim/pipe_trace.hh"

namespace
{

using namespace ff;
using cpu::PipeEvent;
using cpu::PipeEventKind;
using cpu::PipeViewObserver;

// ---- observer recording semantics ----------------------------------

TEST(PipeViewObserver, RecordsHooksInFiringOrder)
{
    PipeViewObserver obs;
    obs.onDispatch(5, 2, 1);
    obs.onDefer(5, 2, 1, cpu::DeferReason::kOperandInvalid);
    obs.onReplay(9, 2, 1);
    obs.onFeedbackApply(12, 1, 3);
    obs.onGroupRetire(10, 2, 2);
    obs.onFlush(11, cpu::FlushKind::kConflict, 0);

    ASSERT_EQ(obs.events().size(), 6u);
    EXPECT_EQ(obs.events()[0].kind, PipeEventKind::kDispatch);
    EXPECT_EQ(obs.events()[0].cycle, 5u);
    EXPECT_EQ(obs.events()[0].id, 1u);
    EXPECT_EQ(obs.events()[0].idx, 2u);
    EXPECT_EQ(obs.events()[1].kind, PipeEventKind::kDefer);
    EXPECT_EQ(obs.events()[1].a,
              static_cast<std::uint8_t>(cpu::DeferReason::kOperandInvalid));
    EXPECT_EQ(obs.events()[2].kind, PipeEventKind::kReplay);
    EXPECT_EQ(obs.events()[3].kind, PipeEventKind::kFeedback);
    EXPECT_EQ(obs.events()[3].b, 3u);
    EXPECT_EQ(obs.events()[4].kind, PipeEventKind::kRetire);
    EXPECT_EQ(obs.events()[4].b, 2u);
    EXPECT_EQ(obs.events()[5].kind, PipeEventKind::kFlush);
    EXPECT_EQ(obs.events()[5].a,
              static_cast<std::uint8_t>(cpu::FlushKind::kConflict));
    EXPECT_EQ(obs.dropped(), 0u);
}

TEST(PipeViewObserver, CycleClassesAreRunLengthEncoded)
{
    PipeViewObserver obs;
    obs.onCycle(0, cpu::CycleClass::kUnstalled);
    obs.onCycle(1, cpu::CycleClass::kUnstalled);
    obs.onCycle(2, cpu::CycleClass::kLoadStall);
    obs.onCycle(3, cpu::CycleClass::kLoadStall);
    obs.onCycle(4, cpu::CycleClass::kUnstalled);

    ASSERT_EQ(obs.events().size(), 3u);
    EXPECT_EQ(obs.events()[0].cycle, 0u);
    EXPECT_EQ(obs.events()[1].cycle, 2u);
    EXPECT_EQ(obs.events()[1].a,
              static_cast<std::uint8_t>(cpu::CycleClass::kLoadStall));
    EXPECT_EQ(obs.events()[2].cycle, 4u);
}

TEST(PipeViewObserver, CapsEventsAndCountsDrops)
{
    PipeViewObserver obs(/*max_events=*/3);
    for (unsigned i = 0; i < 10; ++i)
        obs.onDispatch(i, 0, i + 1);
    EXPECT_EQ(obs.events().size(), 3u);
    EXPECT_EQ(obs.dropped(), 7u);
}

// ---- lifetime reconstruction ---------------------------------------

PipeEvent
ev(PipeEventKind kind, Cycle cycle, DynId id = 0, InstIdx idx = 0,
   std::uint8_t a = 0, std::uint16_t b = 0)
{
    PipeEvent e;
    e.kind = kind;
    e.cycle = cycle;
    e.id = id;
    e.idx = idx;
    e.a = a;
    e.b = b;
    return e;
}

TEST(PipeLifetimes, GroupRetireResolvesFifoInFlight)
{
    // Two instructions dispatched, then one 2-slot group retire.
    const std::vector<PipeEvent> events = {
        ev(PipeEventKind::kDispatch, 1, 1, 0),
        ev(PipeEventKind::kDispatch, 1, 2, 1),
        ev(PipeEventKind::kRetire, 4, 0, 0, 0, 2),
    };
    const auto lives = sim::buildPipeLifetimes(events);
    ASSERT_EQ(lives.size(), 2u);
    EXPECT_EQ(lives[0].id, 1u);
    EXPECT_EQ(lives[0].dispatch, 1u);
    EXPECT_EQ(lives[0].retire, 4u);
    EXPECT_EQ(lives[0].squash, kNeverCycle);
    EXPECT_FALSE(lives[0].deferred);
    EXPECT_EQ(lives[1].retire, 4u);
}

TEST(PipeLifetimes, DeferReplayFeedbackAttachToTheirInstruction)
{
    const std::vector<PipeEvent> events = {
        ev(PipeEventKind::kDispatch, 1, 1, 0),
        ev(PipeEventKind::kDefer, 1, 1, 0,
           static_cast<std::uint8_t>(cpu::DeferReason::kOperandInvalid)),
        ev(PipeEventKind::kReplay, 7, 1, 0),
        ev(PipeEventKind::kRetire, 8, 0, 0, 0, 1),
        ev(PipeEventKind::kFeedback, 10, 1, 0, 0, 4),
    };
    const auto lives = sim::buildPipeLifetimes(events);
    ASSERT_EQ(lives.size(), 1u);
    EXPECT_TRUE(lives[0].deferred);
    EXPECT_EQ(lives[0].defer, cpu::DeferReason::kOperandInvalid);
    EXPECT_EQ(lives[0].replay, 7u);
    EXPECT_EQ(lives[0].retire, 8u);
    // Feedback may land after retirement; the first apply sticks.
    EXPECT_EQ(lives[0].feedback, 10u);
}

TEST(PipeLifetimes, ConflictFlushSquashesEverythingInFlight)
{
    const std::vector<PipeEvent> events = {
        ev(PipeEventKind::kDispatch, 1, 1, 0),
        ev(PipeEventKind::kDispatch, 2, 2, 1),
        ev(PipeEventKind::kFlush, 5, 0, 0,
           static_cast<std::uint8_t>(cpu::FlushKind::kConflict)),
        ev(PipeEventKind::kDispatch, 6, 3, 0),
        ev(PipeEventKind::kRetire, 9, 0, 0, 0, 1),
    };
    const auto lives = sim::buildPipeLifetimes(events);
    ASSERT_EQ(lives.size(), 3u);
    EXPECT_EQ(lives[0].squash, 5u);
    EXPECT_EQ(lives[0].retire, kNeverCycle);
    EXPECT_EQ(lives[1].squash, 5u);
    // The re-dispatched instruction after the flush retires normally.
    EXPECT_EQ(lives[2].squash, kNeverCycle);
    EXPECT_EQ(lives[2].retire, 9u);
}

TEST(PipeLifetimes, BdetFlushSquashesOnlyPastTheRetiredPrefix)
{
    // bDet recovery fires onFlush before the same-cycle retire of the
    // applied pre-branch prefix: the 2 oldest retire, the rest squash.
    const std::vector<PipeEvent> events = {
        ev(PipeEventKind::kDispatch, 1, 1, 0),
        ev(PipeEventKind::kDispatch, 1, 2, 1),
        ev(PipeEventKind::kDispatch, 2, 3, 2),
        ev(PipeEventKind::kFlush, 6, 0, 0,
           static_cast<std::uint8_t>(cpu::FlushKind::kBDet)),
        ev(PipeEventKind::kRetire, 6, 0, 0, 0, 2),
    };
    const auto lives = sim::buildPipeLifetimes(events);
    ASSERT_EQ(lives.size(), 3u);
    EXPECT_EQ(lives[0].retire, 6u);
    EXPECT_EQ(lives[0].squash, kNeverCycle);
    EXPECT_EQ(lives[1].retire, 6u);
    EXPECT_EQ(lives[2].retire, kNeverCycle);
    EXPECT_EQ(lives[2].squash, 6u);
}

TEST(PipeLifetimes, ToleratesRetiresWithNothingInFlight)
{
    // Baseline/run-ahead models emit only cycle-class and retire
    // events; the builder must not invent lifetimes for them.
    const std::vector<PipeEvent> events = {
        ev(PipeEventKind::kCycleClass, 0),
        ev(PipeEventKind::kRetire, 3, 0, 0, 0, 4),
        ev(PipeEventKind::kRetire, 4, 0, 4, 0, 4),
    };
    EXPECT_TRUE(sim::buildPipeLifetimes(events).empty());
}

// ---- container round trip and rejection ----------------------------

sim::PipeTrace
sampleTrace()
{
    sim::PipeTrace t;
    t.kind = sim::CpuKind::kTwoPass;
    t.programHash = 0x1122334455667788ULL;
    t.configHash = 0x99aabbccddeeff00ULL;
    t.programName = "unit.s";
    t.cycles = 42;
    t.dropped = 7;
    t.text.push_back({0, 3, "ld8 r1, [r2]"});
    t.text.push_back({1, -1, "add r3, r1, r4"});
    t.events.push_back(
        ev(PipeEventKind::kDispatch, 1, 1, 0));
    t.events.push_back(
        ev(PipeEventKind::kDefer, 1, 1, 0,
           static_cast<std::uint8_t>(cpu::DeferReason::kOperandInvalid)));
    t.events.push_back(ev(PipeEventKind::kRetire, 9, 0, 0, 0, 1));
    t.engine.names = {"job", "cache-hit"};
    t.engine.lanes = {"main", "worker-0"};
    t.engine.spans.push_back({0, 1, 100, 250, false});
    t.engine.spans.push_back({1, 0, 400, 0, true});
    return t;
}

TEST(PipeTraceFormat, RoundTripsAllSections)
{
    const sim::PipeTrace t = sampleTrace();
    const std::vector<std::uint8_t> bytes = sim::encodePipeTrace(t);

    sim::PipeTrace back;
    ASSERT_TRUE(sim::decodePipeTrace(bytes, back));
    EXPECT_EQ(back.kind, t.kind);
    EXPECT_EQ(back.programHash, t.programHash);
    EXPECT_EQ(back.configHash, t.configHash);
    EXPECT_EQ(back.programName, t.programName);
    EXPECT_EQ(back.cycles, t.cycles);
    EXPECT_EQ(back.dropped, t.dropped);

    ASSERT_EQ(back.text.size(), t.text.size());
    EXPECT_EQ(back.text[0].idx, 0u);
    EXPECT_EQ(back.text[0].srcLine, 3);
    EXPECT_EQ(back.text[0].text, "ld8 r1, [r2]");
    EXPECT_EQ(back.text[1].srcLine, -1);

    ASSERT_EQ(back.events.size(), t.events.size());
    for (std::size_t i = 0; i < t.events.size(); ++i) {
        EXPECT_EQ(back.events[i].cycle, t.events[i].cycle) << i;
        EXPECT_EQ(back.events[i].id, t.events[i].id) << i;
        EXPECT_EQ(back.events[i].idx, t.events[i].idx) << i;
        EXPECT_EQ(back.events[i].kind, t.events[i].kind) << i;
        EXPECT_EQ(back.events[i].a, t.events[i].a) << i;
        EXPECT_EQ(back.events[i].b, t.events[i].b) << i;
    }

    ASSERT_EQ(back.engine.names, t.engine.names);
    ASSERT_EQ(back.engine.lanes, t.engine.lanes);
    ASSERT_EQ(back.engine.spans.size(), t.engine.spans.size());
    EXPECT_EQ(back.engine.spans[0].startUs, 100u);
    EXPECT_EQ(back.engine.spans[0].durUs, 250u);
    EXPECT_FALSE(back.engine.spans[0].instant);
    EXPECT_TRUE(back.engine.spans[1].instant);
}

TEST(PipeTraceFormat, RejectsEveryTruncatedPrefix)
{
    const std::vector<std::uint8_t> bytes =
        sim::encodePipeTrace(sampleTrace());
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        sim::PipeTrace out;
        EXPECT_FALSE(sim::decodePipeTrace(prefix, out))
            << "accepted a " << n << "-byte prefix of "
            << bytes.size();
    }
}

TEST(PipeTraceFormat, RejectsBadMagicVersionAndEnums)
{
    const std::vector<std::uint8_t> bytes =
        sim::encodePipeTrace(sampleTrace());
    sim::PipeTrace out;

    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff; // magic
    EXPECT_FALSE(sim::decodePipeTrace(bad, out));

    bad = bytes;
    bad[4] ^= 0xff; // version
    EXPECT_FALSE(sim::decodePipeTrace(bad, out));

    bad = bytes;
    bad[8] = 0xee; // CpuKind out of range
    EXPECT_FALSE(sim::decodePipeTrace(bad, out));

    // Trailing garbage makes atEnd() fail.
    bad = bytes;
    bad.push_back(0);
    EXPECT_FALSE(sim::decodePipeTrace(bad, out));
}

// ---- rendering -----------------------------------------------------

TEST(PipeViewRender, DrawsLifecycleGlyphs)
{
    sim::PipeTrace t = sampleTrace();
    t.events.clear();
    t.events.push_back(ev(PipeEventKind::kDispatch, 1, 1, 0));
    t.events.push_back(
        ev(PipeEventKind::kDefer, 1, 1, 0,
           static_cast<std::uint8_t>(cpu::DeferReason::kOperandInvalid)));
    t.events.push_back(ev(PipeEventKind::kDispatch, 2, 2, 1));
    t.events.push_back(ev(PipeEventKind::kReplay, 5, 1, 0));
    t.events.push_back(ev(PipeEventKind::kRetire, 6, 0, 0, 0, 2));

    const std::string s = sim::renderPipeView(t);
    EXPECT_NE(s.find("ffpipe: model=2P program=unit.s cycles=42"),
              std::string::npos)
        << s;
    // Deferred load: d...rR relative to its dispatch at cycle 1.
    EXPECT_NE(s.find("d...rR"), std::string::npos) << s;
    // Pre-executed add dispatched at 2, retires at 6: A...R.
    EXPECT_NE(s.find("A...R"), std::string::npos) << s;
}

TEST(PipeViewRender, ClipsAtWidthAndFiltersById)
{
    sim::PipeTrace t = sampleTrace();
    t.events.clear();
    t.events.push_back(ev(PipeEventKind::kDispatch, 1, 1, 0));
    t.events.push_back(ev(PipeEventKind::kDispatch, 1, 2, 1));
    t.events.push_back(ev(PipeEventKind::kRetire, 100, 0, 0, 0, 2));

    const std::string clipped =
        sim::renderPipeView(t, 32, 1, /*width=*/10);
    EXPECT_NE(clipped.find("A........>"), std::string::npos)
        << clipped;

    const std::string from2 = sim::renderPipeView(t, 32, /*from=*/2);
    EXPECT_EQ(from2.find(" 1 @0"), std::string::npos) << from2;
    EXPECT_NE(from2.find(" 2 @1"), std::string::npos) << from2;
}

} // namespace

