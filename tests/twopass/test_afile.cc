/** @file Unit tests for the A-file (V/S/DynID speculative regfile). */

#include <gtest/gtest.h>

#include "cpu/twopass/afile.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

TEST(AFile, FreshRegistersAreValidAndReady)
{
    AFile a;
    EXPECT_TRUE(a.valid(intReg(5)));
    EXPECT_TRUE(a.readyBy(intReg(5), 0));
    EXPECT_EQ(a.read(intReg(5)), 0u);
    EXPECT_EQ(a.lastWriter(intReg(5)), kInvalidDynId);
}

TEST(AFile, WriteExecutedSetsValueAndTiming)
{
    AFile a;
    a.writeExecuted(intReg(3), 77, /*id=*/9, /*ready_at=*/20,
                    PendingKind::kLoad);
    EXPECT_TRUE(a.valid(intReg(3)));
    EXPECT_EQ(a.read(intReg(3)), 77u);
    EXPECT_FALSE(a.readyBy(intReg(3), 19));
    EXPECT_TRUE(a.readyBy(intReg(3), 20));
    EXPECT_EQ(a.kindOf(intReg(3)), PendingKind::kLoad);
    EXPECT_EQ(a.lastWriter(intReg(3)), 9u);
}

TEST(AFile, MarkDeferredClearsValid)
{
    AFile a;
    a.writeExecuted(intReg(3), 77, 9, 0, PendingKind::kNone);
    a.markDeferred(intReg(3), 10);
    EXPECT_FALSE(a.valid(intReg(3)));
    EXPECT_EQ(a.lastWriter(intReg(3)), 10u);
}

TEST(AFile, FeedbackAppliesOnlyToMatchingDynId)
{
    AFile a;
    a.markDeferred(intReg(3), 10);
    // A stale feedback (different id) must be dropped.
    EXPECT_FALSE(a.applyFeedback(intReg(3), 42, 9));
    EXPECT_FALSE(a.valid(intReg(3)));
    // The matching update restores validity.
    EXPECT_TRUE(a.applyFeedback(intReg(3), 42, 10));
    EXPECT_TRUE(a.valid(intReg(3)));
    EXPECT_TRUE(a.readyBy(intReg(3), 0));
    EXPECT_EQ(a.read(intReg(3)), 42u);
}

TEST(AFile, YoungerWriterBlocksOlderFeedback)
{
    AFile a;
    a.markDeferred(intReg(3), 10);
    a.writeExecuted(intReg(3), 55, 12, 0, PendingKind::kNone);
    // Instruction 10's feedback arrives after 12 rewrote the register.
    EXPECT_FALSE(a.applyFeedback(intReg(3), 42, 10));
    EXPECT_EQ(a.read(intReg(3)), 55u);
}

TEST(AFile, CommitMatchClearsSpeculativeBit)
{
    AFile a;
    RegFile bfile;
    a.writeExecuted(intReg(3), 77, 9, 0, PendingKind::kNone);
    a.commitMatch(intReg(3), 9);
    // The entry is architectural now: a repair must not touch it.
    bfile.write(intReg(3), 1);
    a.repairFromArch(bfile);
    EXPECT_EQ(a.read(intReg(3)), 77u);
}

TEST(AFile, CommitMatchIgnoresMismatchedId)
{
    AFile a;
    RegFile bfile;
    a.writeExecuted(intReg(3), 77, 9, 0, PendingKind::kNone);
    a.commitMatch(intReg(3), 8); // not the owner
    bfile.write(intReg(3), 1);
    a.repairFromArch(bfile); // still speculative -> repaired
    EXPECT_EQ(a.read(intReg(3)), 1u);
}

TEST(AFile, RepairRestoresSpeculativeAndInvalidEntries)
{
    AFile a;
    RegFile bfile;
    bfile.write(intReg(1), 100);
    bfile.write(intReg(2), 200);
    a.writeExecuted(intReg(1), 55, 9, 50, PendingKind::kLoad);
    a.markDeferred(intReg(2), 10);
    const unsigned repaired = a.repairFromArch(bfile);
    EXPECT_GE(repaired, 2u);
    EXPECT_TRUE(a.valid(intReg(1)));
    EXPECT_TRUE(a.valid(intReg(2)));
    EXPECT_EQ(a.read(intReg(1)), 100u);
    EXPECT_EQ(a.read(intReg(2)), 200u);
    EXPECT_TRUE(a.readyBy(intReg(1), 0)); // timing cleared
    EXPECT_EQ(a.lastWriter(intReg(1)), kInvalidDynId);
}

TEST(AFile, HardwiredRegistersAreImmune)
{
    AFile a;
    a.markDeferred(intReg(0), 5);
    a.markDeferred(predReg(0), 5);
    EXPECT_TRUE(a.valid(intReg(0)));
    EXPECT_TRUE(a.valid(predReg(0)));
    EXPECT_EQ(a.read(intReg(0)), 0u);
    EXPECT_TRUE(a.readPred(predReg(0)));
    a.writeExecuted(intReg(0), 9, 5, 0, PendingKind::kNone);
    EXPECT_EQ(a.read(intReg(0)), 0u);
}

TEST(AFile, PredicateWritesNormalize)
{
    AFile a;
    a.writeExecuted(predReg(3), 0xF0, 1, 0, PendingKind::kNone);
    EXPECT_EQ(a.read(predReg(3)), 1u);
    EXPECT_TRUE(a.applyFeedback(predReg(3), 0xF0, 1));
    EXPECT_EQ(a.read(predReg(3)), 1u);
}

TEST(AFile, ResetRestoresFreshState)
{
    AFile a;
    a.markDeferred(intReg(3), 10);
    a.reset();
    EXPECT_TRUE(a.valid(intReg(3)));
    EXPECT_EQ(a.read(intReg(3)), 0u);
}

} // namespace
