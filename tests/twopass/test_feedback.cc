/**
 * @file
 * Unit tests for the B-to-A committed-result feedback path
 * (Sec. 3.5): DynID-gated application, latency sensitivity, the
 * disabled ("inf") mode, and the revalidation of conservatively
 * cleared destinations of nullified instructions.
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/**
 * A loop whose accumulator chain passes through a missing load each
 * iteration: r6's chain defers, and only feedback can revalidate it
 * for the A-pipe.
 */
Program
feedbackLoop(int iters)
{
    ProgramBuilder b("fb");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(5), iters);
    b.movi(intReg(6), 0); // loop-carried through the load's consumer
    b.label("loop");
    b.shli(intReg(2), intReg(5), 13);
    b.add(intReg(3), intReg(1), intReg(2));
    b.ld8(intReg(4), intReg(3), 0);         // cold load
    b.add(intReg(6), intReg(6), intReg(4)); // defers; marks r6
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.movi(intReg(7), 0x100);
    b.st8(intReg(7), 0, intReg(6));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i <= iters; ++i)
        seq.poke64(0x100000 + static_cast<Addr>(i) * 8192, i + 1);
    return compiler::schedule(seq);
}

TEST(Feedback, UpdatesAreAppliedAndDropped)
{
    const Program p = feedbackLoop(40);
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    const TwoPassStats &s = cpu.stats();
    EXPECT_GT(s.feedbackApplied, 0u);
    // In a loop, most feedback is stale by arrival (a younger
    // instance re-marked the register) — the DynID gate drops it.
    EXPECT_GT(s.feedbackDropped, 0u);
}

TEST(Feedback, DisabledModeDefersMore)
{
    // Steady-state loops re-mark their loop-carried registers before
    // feedback lands (DynID-dropped), so feedback shows its value on
    // code with pipeline drains: put a (mispredictable) data-
    // dependent branch in the loop. After each flush the A-pipe
    // restarts behind the B-pipe and feedback revalidates the carried
    // chain before the next dynamic instance dispatches.
    ProgramBuilder b("fbflush");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(5), 80);
    b.movi(intReg(6), 0);
    b.label("loop");
    b.shli(intReg(2), intReg(5), 13);
    b.add(intReg(3), intReg(1), intReg(2));
    b.ld8(intReg(4), intReg(3), 0);
    b.add(intReg(6), intReg(6), intReg(4));
    b.andi(intReg(7), intReg(4), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(7), 1);
    b.br("skip");
    b.pred(predReg(3));
    b.xori(intReg(6), intReg(6), 0x55);
    b.label("skip");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i <= 81; ++i)
        seq.poke64(0x100000 + static_cast<Addr>(i) * 8192,
                   i * 2654435761ULL);
    const Program p = compiler::schedule(seq);

    CoreConfig on;
    TwoPassCpu cpu_on(p, on);
    ASSERT_TRUE(cpu_on.run(1'000'000).halted);

    CoreConfig off;
    off.feedbackEnabled = false;
    TwoPassCpu cpu_off(p, off);
    ASSERT_TRUE(cpu_off.run(1'000'000).halted);

    // The Figure 8 "inf" point: no feedback -> more deferrals.
    EXPECT_GT(cpu_off.stats().deferred, cpu_on.stats().deferred);
    EXPECT_EQ(cpu_off.stats().feedbackApplied, 0u);

    // Both remain architecturally correct.
    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu_on.archRegs().fingerprint(),
              ref.regs().fingerprint());
    EXPECT_EQ(cpu_off.archRegs().fingerprint(),
              ref.regs().fingerprint());
}

TEST(Feedback, LatencyIsMonotonicInDeferrals)
{
    const Program p = feedbackLoop(60);
    std::uint64_t last_deferred = 0;
    for (unsigned lat : {1u, 8u, 32u}) {
        CoreConfig cfg;
        cfg.feedbackLatency = lat;
        TwoPassCpu cpu(p, cfg);
        ASSERT_TRUE(cpu.run(1'000'000).halted);
        EXPECT_GE(cpu.stats().deferred, last_deferred);
        last_deferred = cpu.stats().deferred;
    }
}

TEST(Feedback, NullifiedDeferredInstructionRevalidates)
{
    // A deferred, predicate-FALSE instruction writes nothing, yet its
    // destination was conservatively invalidated at dispatch. The
    // feedback of the (unchanged) architectural value must revalidate
    // it so consumers can pre-execute again.
    ProgramBuilder b("nullfb");
    b.movi(intReg(1), 0x200000);
    b.movi(intReg(6), 500);   // the value r6 keeps
    b.movi(intReg(5), 6);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.shli(intReg(2), intReg(5), 13);
    b.add(intReg(3), intReg(1), intReg(2));
    b.ld8(intReg(4), intReg(3), 0); // cold load
    b.cmpi(CmpCond::kGt, predReg(3), predReg(4), intReg(4),
           0x7FFFFFFF);              // always false
    b.mov(intReg(6), intReg(4));
    b.pred(predReg(3));              // nullified write to r6, deferred
    b.add(intReg(31), intReg(31), intReg(6)); // consumer of r6
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i <= 7; ++i)
        seq.poke64(0x200000 + static_cast<Addr>(i) * 8192, i + 9);
    const Program p = compiler::schedule(seq);

    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    // r6 stayed 500 throughout; 6 iterations accumulate 3000.
    EXPECT_EQ(cpu.archRegs().read(intReg(31)), 3000u);

    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
}

TEST(Feedback, RuntimeTolerantOfModerateLatency)
{
    // The paper's Figure 8 conclusion: the path tolerates a few
    // cycles of latency. Runtime at latency 4 must be within a few
    // percent of latency 1.
    const Program p = feedbackLoop(60);
    CoreConfig l1;
    l1.feedbackLatency = 1;
    TwoPassCpu cpu1(p, l1);
    const Cycle c1 = cpu1.run(1'000'000).cycles;

    CoreConfig l4;
    l4.feedbackLatency = 4;
    TwoPassCpu cpu4(p, l4);
    const Cycle c4 = cpu4.run(1'000'000).cycles;

    EXPECT_LE(c4, c1 + c1 / 10);
}

} // namespace
