/**
 * @file
 * Unit tests for the paper-described extensions: partial functional-
 * unit replication (Sec. 3.7) and A-pipe issue moderation (the
 * future work of Secs. 3.5/6), plus the conflict-retry forward-
 * progress guarantee.
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

void
expectMatchesFunctional(const Program &p, const TwoPassCpu &cpu)
{
    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
}

/** An FP-using loop whose inputs are always ready. */
Program
fpLoop(int iters)
{
    ProgramBuilder b("fp");
    b.movi(intReg(2), 3);
    b.itof(fpReg(2), intReg(2));
    b.movi(intReg(3), 2);
    b.itof(fpReg(3), intReg(3));
    b.itof(fpReg(1), intReg(0));
    b.movi(intReg(5), iters);
    b.label("loop");
    b.fmul(fpReg(4), fpReg(2), fpReg(3));
    b.fadd(fpReg(1), fpReg(1), fpReg(4));
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.ftoi(intReg(31), fpReg(1));
    b.movi(intReg(7), 0x100);
    b.st8(intReg(7), 0, intReg(31));
    b.halt();
    return compiler::schedule(b.finalize());
}

TEST(PartialReplication, FpInstructionsDeferWithoutFpUnits)
{
    const Program p = fpLoop(40);
    CoreConfig cfg;
    cfg.aPipeHasFpUnits = false;
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    const auto no_fu = static_cast<unsigned>(
        DeferReason::kNoFunctionalUnit);
    // Both FP ops per iteration are affected; some defer for the
    // missing unit, the chain's tail for invalid operands.
    EXPECT_GT(cpu.stats().deferredByReason[no_fu], 35u);
    expectMatchesFunctional(p, cpu);
}

TEST(PartialReplication, FullReplicationPreExecutesFp)
{
    const Program p = fpLoop(40);
    CoreConfig cfg; // FP units replicated by default
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    const auto no_fu = static_cast<unsigned>(
        DeferReason::kNoFunctionalUnit);
    EXPECT_EQ(cpu.stats().deferredByReason[no_fu], 0u);
}

TEST(PartialReplication, IntegerCodeUnaffected)
{
    ProgramBuilder b("int");
    b.movi(intReg(1), 7);
    b.addi(intReg(2), intReg(1), 3);
    b.halt();
    const Program p = compiler::schedule(b.finalize());

    CoreConfig nofp;
    nofp.aPipeHasFpUnits = false;
    TwoPassCpu with(p, CoreConfig{});
    TwoPassCpu without(p, nofp);
    const Cycle a = with.run(100000).cycles;
    const Cycle c = without.run(100000).cycles;
    EXPECT_EQ(a, c);
}

/** A loop whose every body instruction chains off a cold load. */
Program
highDeferralLoop(int iters)
{
    ProgramBuilder b("defer");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(5), iters);
    b.label("loop");
    b.ld8(intReg(1), intReg(1), 0); // serial chase
    b.addi(intReg(2), intReg(1), 1);
    b.xori(intReg(3), intReg(2), 5);
    b.add(intReg(4), intReg(3), intReg(2));
    b.shri(intReg(6), intReg(4), 2);
    b.add(intReg(7), intReg(6), intReg(3));
    b.xori(intReg(8), intReg(7), 9);
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 40; ++i) {
        seq.poke64(0x100000 + static_cast<Addr>(i) * 0x40000,
                   0x100000 + static_cast<Addr>(i + 1) * 0x40000);
    }
    return compiler::schedule(seq);
}

TEST(Throttle, EngagesOnHighDeferralCode)
{
    const Program p = highDeferralLoop(30);
    CoreConfig cfg;
    cfg.aPipeThrottlePercent = 50;
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    EXPECT_GT(cpu.stats().aStallThrottled, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(Throttle, DisabledByDefault)
{
    const Program p = highDeferralLoop(20);
    TwoPassCpu cpu(p, CoreConfig{});
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    EXPECT_EQ(cpu.stats().aStallThrottled, 0u);
}

TEST(Throttle, NeverEngagesOnPreExecutableCode)
{
    ProgramBuilder b("clean");
    b.movi(intReg(1), 1);
    b.movi(intReg(5), 50);
    b.label("loop");
    b.addi(intReg(1), intReg(1), 3);
    b.xori(intReg(2), intReg(1), 7);
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    CoreConfig cfg;
    cfg.aPipeThrottlePercent = 50;
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    EXPECT_EQ(cpu.stats().aStallThrottled, 0u);
}

TEST(ConflictRetry, TinyAlatCannotLivelock)
{
    // Groups of loads wider than the ALAT: without the retry
    // fallback, every merge would flush forever.
    ProgramBuilder b("tiny");
    b.movi(intReg(1), 0x200000);
    b.movi(intReg(5), 12);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.ld8(intReg(2), intReg(1), 0);
    b.ld8(intReg(3), intReg(1), 8192);
    b.ld8(intReg(4), intReg(1), 16384);
    b.add(intReg(31), intReg(31), intReg(2));
    b.add(intReg(31), intReg(31), intReg(3));
    b.add(intReg(31), intReg(31), intReg(4));
    b.addi(intReg(1), intReg(1), 64);
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 4096; ++i)
        seq.poke64(0x200000 + static_cast<Addr>(i) * 8, i);
    const Program p = compiler::schedule(seq);

    CoreConfig cfg;
    cfg.alatCapacity = 2;
    TwoPassCpu cpu(p, cfg);
    const RunResult r = cpu.run(5'000'000);
    ASSERT_TRUE(r.halted); // forward progress despite the tiny table
    const auto retry = static_cast<unsigned>(
        DeferReason::kConflictRetry);
    EXPECT_GT(cpu.stats().deferredByReason[retry], 0u);
    expectMatchesFunctional(p, cpu);
}

} // namespace
