/**
 * @file
 * Tests pinning the Figure 6 cycle-accounting semantics of the
 * two-pass core: which cycles land in which class, the A-pipe-stall
 * category, and the stall-kind classification of dangling
 * dependences.
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

TEST(Accounting, DanglingLoadStallsClassifyAsLoad)
{
    // A pre-started cold load whose consumer follows immediately: the
    // B-pipe waits on the dangling CRS entry for ~the memory latency.
    ProgramBuilder b("dangle");
    b.movi(intReg(1), 0x100000);
    b.ld8(intReg(2), intReg(1), 0);
    b.addi(intReg(3), intReg(2), 1);
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(100000).halted);
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kLoadStall), 100u);
    EXPECT_EQ(cpu.cycleAccounting().of(CycleClass::kNonLoadDepStall),
              0u);
}

TEST(Accounting, FdivDanglingClassifiesAsNonLoad)
{
    // A pre-executed FDIV's 16-cycle result is a non-load dangling
    // dependence at the merge point.
    ProgramBuilder b("fdiv");
    b.movi(intReg(1), 6);
    b.itof(fpReg(1), intReg(1));
    b.movi(intReg(2), 3);
    b.itof(fpReg(2), intReg(2));
    b.fdiv(fpReg(3), fpReg(1), fpReg(2));
    b.ftoi(intReg(3), fpReg(3));
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(100000).halted);
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kNonLoadDepStall),
              5u);
}

TEST(Accounting, ApipeStallWhenBPipeOutrunsDispatch)
{
    // A long chain of single-instruction groups: the B-pipe can
    // retire as fast as the A-pipe dispatches, but the A-pipe must
    // stay one cycle ahead, so the B-pipe periodically waits and the
    // cycle lands in the A-pipe-stall class at least at startup.
    ProgramBuilder b("lead", /*auto_stop=*/true);
    for (unsigned i = 1; i <= 30; ++i)
        b.movi(intReg(1 + (i % 20)), i);
    b.halt();
    const Program p = b.finalize(); // deliberately unscheduled
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(100000).halted);
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kApipeStall), 0u);
}

TEST(Accounting, FrontEndStallDuringColdStart)
{
    ProgramBuilder b("cold");
    b.movi(intReg(1), 1);
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(100000).halted);
    // The first fetch misses the I-cache to memory: those cycles are
    // front-end stalls of the B-pipe.
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kFrontEndStall),
              100u);
}

TEST(Accounting, ResourceStallWithOneMshr)
{
    // Independent cold loads, one MSHR: the B-pipe's deferred-load
    // window (or the A-pipe via deferral) serializes on the slot.
    ProgramBuilder b("mshr1");
    b.movi(intReg(1), 0x200000);
    b.movi(intReg(9), 64);
    b.label("loop");
    b.ld8(intReg(2), intReg(1), 0);
    b.ld8(intReg(3), intReg(1), 16384);
    b.add(intReg(4), intReg(2), intReg(3));
    b.addi(intReg(1), intReg(1), 8192);
    b.subi(intReg(9), intReg(9), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(9), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    CoreConfig cfg;
    cfg.mem.maxOutstandingLoads = 1;
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    // With a single MSHR the A-pipe defers overflow loads; whether
    // they surface as resource stalls in B or MSHR-deferrals in A,
    // the structural limit must be visible somewhere.
    const auto mshr_defers = cpu.stats().deferredByReason[static_cast<
        unsigned>(DeferReason::kMshrFull)];
    EXPECT_GT(mshr_defers +
                  cpu.cycleAccounting().of(CycleClass::kResourceStall),
              0u);
}

TEST(Accounting, ClassesAlwaysSumToCycles)
{
    for (const char *variant : {"plain", "regroup", "throttle"}) {
        ProgramBuilder b("sum");
        b.movi(intReg(1), 0x100000);
        b.movi(intReg(9), 40);
        b.label("loop");
        b.ld8(intReg(2), intReg(1), 0);
        b.add(intReg(3), intReg(2), intReg(3));
        b.addi(intReg(1), intReg(1), 8192);
        b.subi(intReg(9), intReg(9), 1);
        b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(9), 0);
        b.br("loop");
        b.pred(predReg(1));
        b.halt();
        CoreConfig cfg;
        if (std::string(variant) == "regroup")
            cfg.regroup = true;
        if (std::string(variant) == "throttle")
            cfg.aPipeThrottlePercent = 50;
        const Program p = compiler::schedule(b.finalize());
        TwoPassCpu cpu(p, cfg);
        const RunResult r = cpu.run(10'000'000);
        ASSERT_TRUE(r.halted) << variant;
        EXPECT_EQ(cpu.cycleAccounting().total(), r.cycles) << variant;
    }
}

TEST(Accounting, RetiredInstructionsNeverExceedDispatched)
{
    ProgramBuilder b("flow");
    b.movi(intReg(1), 0x300000);
    b.movi(intReg(9), 30);
    b.label("loop");
    b.ld8(intReg(2), intReg(1), 0);
    b.andi(intReg(3), intReg(2), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(3), 1);
    b.br("skip");
    b.pred(predReg(3));
    b.addi(intReg(4), intReg(4), 1);
    b.label("skip");
    b.addi(intReg(1), intReg(1), 8192);
    b.subi(intReg(9), intReg(9), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(9), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 40; ++i)
        seq.poke64(0x300000 + static_cast<Addr>(i) * 8192, i * 7);
    const Program p = compiler::schedule(seq);
    TwoPassCpu cpu(p, CoreConfig());
    const RunResult r = cpu.run(10'000'000);
    ASSERT_TRUE(r.halted);
    // Squashes mean some dispatched instructions never retire; the
    // reverse would be a bookkeeping bug.
    EXPECT_GE(cpu.stats().dispatched, r.instsRetired);
    EXPECT_EQ(cpu.stats().dispatched,
              cpu.stats().preExecuted + cpu.stats().deferred);
}

} // namespace
