/** @file Unit tests for the coupling queue / CRS container. */

#include <gtest/gtest.h>

#include "cpu/twopass/coupling_queue.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;

CqEntry
entry(DynId id, CqStatus status, bool group_end = true,
      bool is_store = false)
{
    CqEntry e;
    e.id = id;
    e.status = status;
    e.groupEnd = group_end;
    e.isStore = is_store;
    return e;
}

TEST(CouplingQueue, FifoBasics)
{
    CouplingQueue cq(4);
    EXPECT_TRUE(cq.empty());
    EXPECT_EQ(cq.capacity(), 4u);
    cq.push(entry(1, CqStatus::kPreExecuted));
    cq.push(entry(2, CqStatus::kDeferred));
    EXPECT_EQ(cq.size(), 2u);
    EXPECT_EQ(cq.id(0), 1u);
    EXPECT_EQ(cq.id(1), 2u);
    cq.pop();
    EXPECT_EQ(cq.id(0), 2u);
}

TEST(CouplingQueue, FreeSlotsAndFull)
{
    CouplingQueue cq(2);
    EXPECT_EQ(cq.freeSlots(), 2u);
    cq.push(entry(1, CqStatus::kPreExecuted));
    cq.push(entry(2, CqStatus::kPreExecuted));
    EXPECT_TRUE(cq.full());
    EXPECT_EQ(cq.freeSlots(), 0u);
}

TEST(CouplingQueue, SquashYoungerThan)
{
    CouplingQueue cq(8);
    for (DynId id = 1; id <= 5; ++id)
        cq.push(entry(id, CqStatus::kDeferred));
    cq.squashYoungerThan(3);
    EXPECT_EQ(cq.size(), 3u);
    EXPECT_EQ(cq.id(2), 3u);
}

TEST(CouplingQueue, SquashAllWhenBoundaryIsOlderThanEverything)
{
    CouplingQueue cq(8);
    for (DynId id = 10; id <= 12; ++id)
        cq.push(entry(id, CqStatus::kDeferred));
    cq.squashYoungerThan(5);
    EXPECT_TRUE(cq.empty());
}

TEST(CouplingQueue, DeferredStoreCount)
{
    CouplingQueue cq(8);
    cq.push(entry(1, CqStatus::kDeferred, true, /*is_store=*/true));
    cq.push(entry(2, CqStatus::kPreExecuted, true, /*is_store=*/true));
    cq.push(entry(3, CqStatus::kDeferred, true, /*is_store=*/false));
    cq.push(entry(4, CqStatus::kDeferred, true, /*is_store=*/true));
    EXPECT_EQ(cq.deferredStores(), 2u);
    cq.pop(); // the first deferred store retires
    EXPECT_EQ(cq.deferredStores(), 1u);
}

TEST(CouplingQueue, ClearEmpties)
{
    CouplingQueue cq(4);
    cq.push(entry(1, CqStatus::kDeferred));
    cq.clear();
    EXPECT_TRUE(cq.empty());
    EXPECT_EQ(cq.deferredStores(), 0u);
}

TEST(CouplingQueue, EntryCarriesCrsPayload)
{
    CouplingQueue cq(4);
    CqEntry e = entry(7, CqStatus::kPreExecuted);
    e.predTrue = true;
    e.writesDst = true;
    e.dstVal = 0xABCD;
    e.readyAt = 99;
    e.isLoad = true;
    e.addr = 0x1234;
    e.size = 8;
    cq.push(e);
    const CqEntry got = cq.entry(0);
    EXPECT_TRUE(got.predTrue);
    EXPECT_TRUE(got.writesDst);
    EXPECT_EQ(got.dstVal, 0xABCDu);
    EXPECT_EQ(got.readyAt, 99u);
    EXPECT_TRUE(got.isLoad);
    EXPECT_EQ(got.addr, 0x1234u);
}

} // namespace
