/** @file Unit tests for B-pipe dispatch regrouping (2Pre). */

#include <gtest/gtest.h>

#include <functional>

#include "cpu/twopass/regrouper.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/**
 * Fixture: builds a program whose instructions back the CQ entries,
 * and a CQ whose entries reference them one-to-one.
 */
struct Fixture
{
    Program prog;
    CouplingQueue cq{64};
    DynId next_id = 1;

    explicit Fixture(Program p) : prog(std::move(p)) {}

    /**
     * Enqueues instruction @p idx with the program's stop bit. CQ
     * entries are immutable once queued, so per-test tweaks go through
     * @p tweak before the push.
     */
    void
    push(InstIdx idx, CqStatus status, Cycle enq = 0,
         const std::function<void(CqEntry &)> &tweak = nullptr)
    {
        CqEntry e;
        e.idx = idx;
        e.id = next_id++;
        e.enqueuedAt = enq;
        e.status = status;
        e.groupEnd = prog.inst(idx).stop;
        e.isLoad = prog.inst(idx).isLoad();
        e.isStore = prog.inst(idx).isStore();
        e.isBranch = prog.inst(idx).isBranch();
        if (tweak)
            tweak(e);
        cq.push(e);
    }
};

/** Three independent single-instruction groups + halt. */
Program
independentGroups()
{
    ProgramBuilder b("indep", /*auto_stop=*/true);
    b.movi(intReg(1), 1); // 0
    b.movi(intReg(2), 2); // 1
    b.movi(intReg(3), 3); // 2
    b.halt();             // 3
    return b.finalize();
}

// entry_ready predicates receive the entry's logical CQ index.
const auto kAlwaysReady = [](std::size_t) { return true; };

TEST(Regrouper, HeadGroupWindowSpansTheStopBit)
{
    ProgramBuilder b("two", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop();
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kPreExecuted);
    f.push(1, CqStatus::kPreExecuted);
    f.push(2, CqStatus::kPreExecuted);
    const RetireWindow w = headGroupWindow(f.cq);
    EXPECT_EQ(w.entries, 2u);
    EXPECT_EQ(w.groups, 1u);
}

TEST(Regrouper, FusesIndependentReadyGroups)
{
    Fixture f(independentGroups());
    for (InstIdx i = 0; i < 3; ++i)
        f.push(i, CqStatus::kPreExecuted, /*enq=*/0);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), /*now=*/5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 3u);
    EXPECT_EQ(w.groups, 3u);
}

TEST(Regrouper, StopsAtNotReadyEntry)
{
    Fixture f(independentGroups());
    f.push(0, CqStatus::kPreExecuted);
    f.push(1, CqStatus::kPreExecuted, /*enq=*/0,
           [](CqEntry &e) { e.readyAt = 100; }); // a dangling result
    f.push(2, CqStatus::kPreExecuted);
    auto ready = [&f](std::size_t k) { return f.cq.readyAt(k) <= 5; };
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w, ready);
    EXPECT_EQ(w.entries, 1u);
}

TEST(Regrouper, BlockedByDeferredProducerDependence)
{
    ProgramBuilder b("dep", /*auto_stop=*/true);
    b.movi(intReg(1), 1);            // 0: will be DEFERRED
    b.addi(intReg(2), intReg(1), 1); // 1: consumer of r1
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kDeferred);
    f.push(1, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    // The consumer still depends on the deferred movi: no fusion.
    EXPECT_EQ(w.entries, 1u);
}

TEST(Regrouper, PreExecutedProducerAllowsFusion)
{
    ProgramBuilder b("ok", /*auto_stop=*/true);
    b.movi(intReg(1), 1);
    b.addi(intReg(2), intReg(1), 1);
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kPreExecuted); // result already in the CRS
    f.push(1, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 2u);
    EXPECT_EQ(w.groups, 2u);
}

TEST(Regrouper, ResourceLimitBoundsTheWindow)
{
    // Two groups of 5 ALU ops each cannot fuse into one 8-issue
    // window limited to 5 ALU units.
    ProgramBuilder b("res", /*auto_stop=*/false);
    for (unsigned i = 1; i <= 5; ++i)
        b.movi(intReg(i), i);
    b.stop();
    for (unsigned i = 6; i <= 10; ++i)
        b.movi(intReg(i), i);
    b.stop();
    b.halt();
    Fixture f(b.finalize());
    for (InstIdx i = 0; i < 10; ++i)
        f.push(i, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 5u);
    EXPECT_EQ(w.groups, 1u);
}

TEST(Regrouper, DeferredStoreBlocksOnlyPreExecutedLoads)
{
    // Non-load work may fuse behind a deferred store...
    ProgramBuilder b("st", /*auto_stop=*/true);
    b.st8(intReg(1), 0, intReg(2)); // 0: deferred store
    b.movi(intReg(3), 3);           // 1: ALU, safe to fuse
    b.ld8(intReg(4), intReg(5), 0); // 2: pre-executed load: BLOCKED
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kDeferred);
    f.push(1, CqStatus::kPreExecuted);
    f.push(2, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    // ...but the pre-executed load's ALAT check must wait for the
    // store's invalidations, so fusion stops before it.
    EXPECT_EQ(w.entries, 2u);
    EXPECT_EQ(w.groups, 2u);
}

TEST(Regrouper, DeferredLoadMayFuseBehindDeferredStore)
{
    // A deferred load executes at apply time, after the older store
    // has written memory: fusing it is safe.
    ProgramBuilder b("stld", /*auto_stop=*/true);
    b.st8(intReg(1), 0, intReg(2)); // 0: deferred store
    b.ld8(intReg(4), intReg(5), 0); // 1: deferred load
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kDeferred);
    f.push(1, CqStatus::kDeferred);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 2u);
}

TEST(Regrouper, DeferredBranchBlocksFurtherFusion)
{
    ProgramBuilder b("br", /*auto_stop=*/true);
    b.label("l");
    b.br("l");          // 0: deferred (unresolved) branch
    b.movi(intReg(1), 1); // 1: potentially wrong-path
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kDeferred);
    f.push(1, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 1u);
}

TEST(Regrouper, ResolvedBranchAllowsFusion)
{
    ProgramBuilder b("brA", /*auto_stop=*/true);
    b.label("l");
    b.br("l");            // 0: A-resolved branch
    b.movi(intReg(1), 1); // 1: confirmed-path work
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kPreExecuted, /*enq=*/0,
           [](CqEntry &e) { e.branchResolvedInA = true; });
    f.push(1, CqStatus::kPreExecuted);
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 2u);
}

TEST(Regrouper, SameCycleEnqueueBlocksFusion)
{
    Fixture f(independentGroups());
    f.push(0, CqStatus::kPreExecuted, /*enq=*/0);
    f.push(1, CqStatus::kPreExecuted, /*enq=*/5); // dispatched "now"
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), /*now=*/5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 1u); // A must stay a cycle ahead
}

TEST(Regrouper, IncompleteTrailingGroupNotFused)
{
    ProgramBuilder b("torn", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.stop();
    b.movi(intReg(2), 2);
    b.movi(intReg(3), 3);
    b.stop();
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kPreExecuted);
    f.push(1, CqStatus::kPreExecuted); // group 2 only partly queued
    RetireWindow w = headGroupWindow(f.cq);
    w = extendRetireWindow(f.cq, f.prog, GroupLimits(), 5, w,
                           kAlwaysReady);
    EXPECT_EQ(w.entries, 1u);
}

TEST(RegrouperDeathTest, TornHeadGroupPanics)
{
    ProgramBuilder b("torn2", /*auto_stop=*/false);
    b.movi(intReg(1), 1);
    b.movi(intReg(2), 2);
    b.stop();
    b.halt();
    Fixture f(b.finalize());
    f.push(0, CqStatus::kPreExecuted); // head group is incomplete
    EXPECT_DEATH(headGroupWindow(f.cq), "torn");
}

} // namespace
