/** @file End-to-end unit tests of the two-pass core on small kernels. */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/baseline/baseline_cpu.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/** A probe loop over a table that dwells in the L2 (128 KB). */
Program
l2ProbeLoop(int iters)
{
    ProgramBuilder b("l2probe");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(2), iters);
    b.movi(intReg(3), 99);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.addi(intReg(3), intReg(3),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(4), intReg(3), 40);
    b.andi(intReg(4), intReg(4), 16383);
    b.shli(intReg(4), intReg(4), 3);
    b.add(intReg(5), intReg(1), intReg(4));
    b.ld8(intReg(6), intReg(5), 0);
    b.add(intReg(31), intReg(31), intReg(6)); // miss consumer
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.movi(intReg(7), 0x100);
    b.st8(intReg(7), 0, intReg(31));
    b.halt();
    Program seq = b.finalize();
    for (int e = 0; e < 16384; ++e)
        seq.poke64(0x100000 + e * 8, e * 7 + 1);
    return compiler::schedule(seq);
}

void
expectMatchesFunctional(const Program &p, const TwoPassCpu &cpu)
{
    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
}

TEST(TwoPass, AbsorbsShortMisses)
{
    const Program p = l2ProbeLoop(300);

    BaselineCpu base(p, CoreConfig());
    const RunResult rb = base.run(10'000'000);
    ASSERT_TRUE(rb.halted);

    TwoPassCpu twop(p, CoreConfig());
    const RunResult r2 = twop.run(10'000'000);
    ASSERT_TRUE(r2.halted);

    // The probe misses are mostly L2 hits; the A-pipe runs past them
    // and the B-pipe absorbs the latency: a solid win.
    EXPECT_LT(r2.cycles * 10, rb.cycles * 9);
    EXPECT_LT(twop.cycleAccounting().of(CycleClass::kLoadStall),
              base.cycleAccounting().of(CycleClass::kLoadStall));
    expectMatchesFunctional(p, twop);
}

TEST(TwoPass, PreExecutesTheBulkOfLoads)
{
    const Program p = l2ProbeLoop(200);
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    const TwoPassStats &s = cpu.stats();
    // The paper's Figure 7 claim: the majority of accesses initiate
    // in the A-pipe.
    EXPECT_GT(s.loadsInA, s.loadsInB * 3);
}

TEST(TwoPass, CycleClassesSumToTotal)
{
    const Program p = l2ProbeLoop(50);
    TwoPassCpu cpu(p, CoreConfig());
    const RunResult r = cpu.run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(cpu.cycleAccounting().total(), r.cycles);
}

TEST(TwoPass, RetiresEveryDispatchedInstructionOnCleanRuns)
{
    const Program p = l2ProbeLoop(50);
    TwoPassCpu cpu(p, CoreConfig());
    const RunResult r = cpu.run(10'000'000);
    ASSERT_TRUE(r.halted);
    const TwoPassStats &s = cpu.stats();
    EXPECT_EQ(s.dispatched, s.preExecuted + s.deferred);
    // With correct loop prediction after warmup, few squashes: most
    // dispatched instructions retire.
    EXPECT_GE(s.dispatched, r.instsRetired);
}

TEST(TwoPass, NullifiedSlotsFlowThrough)
{
    ProgramBuilder b("pred");
    b.movi(intReg(1), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(1), 2);
    b.movi(intReg(2), 77);
    b.pred(predReg(3)); // false: nullified
    b.movi(intReg(5), 88);
    b.pred(predReg(4)); // true
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(100000).halted);
    EXPECT_EQ(cpu.archRegs().read(intReg(2)), 0u);
    EXPECT_EQ(cpu.archRegs().read(intReg(5)), 88u);
    expectMatchesFunctional(p, cpu);
}

TEST(TwoPass, TinyCouplingQueueStillCorrect)
{
    const Program p = l2ProbeLoop(100);
    CoreConfig cfg;
    cfg.couplingQueueSize = 8; // smallest legal: one widest group
    TwoPassCpu cpu(p, cfg);
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    EXPECT_GT(cpu.stats().aStallCqFull, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(TwoPass, QueueDepthGovernsOverlap)
{
    const Program p = l2ProbeLoop(200);
    CoreConfig small;
    small.couplingQueueSize = 8;
    TwoPassCpu cpu_small(p, small);
    const Cycle small_cycles = cpu_small.run(10'000'000).cycles;

    CoreConfig big;
    big.couplingQueueSize = 64;
    TwoPassCpu cpu_big(p, big);
    const Cycle big_cycles = cpu_big.run(10'000'000).cycles;

    EXPECT_LT(big_cycles, small_cycles);
}

TEST(TwoPass, DeferredChainExecutesInB)
{
    // A serial pointer chase: every address depends on the previous
    // load, so the A-pipe can pre-execute almost nothing.
    ProgramBuilder b("chase");
    b.movi(intReg(1), 0x200000);
    b.movi(intReg(2), 30);
    b.label("loop");
    b.ld8(intReg(1), intReg(1), 0);
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    // A chain of pointers, each to the next node 1 MB away.
    for (int i = 0; i < 40; ++i) {
        seq.poke64(0x200000 + static_cast<Addr>(i) * 0x100000,
                   0x200000 + static_cast<Addr>(i + 1) * 0x100000);
    }
    const Program p = compiler::schedule(seq);
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    // After the first iteration the chase loads are all deferred.
    EXPECT_GT(cpu.stats().loadsInB, cpu.stats().loadsInA);
    expectMatchesFunctional(p, cpu);
}

TEST(TwoPass, HaltInApipeEndsDispatch)
{
    ProgramBuilder b("halt");
    b.movi(intReg(1), 1);
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    const RunResult r = cpu.run(100000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(cpu.archRegs().read(intReg(1)), 1u);
}

TEST(TwoPass, RegroupRetiresMultipleGroupsPerCycle)
{
    const Program p = l2ProbeLoop(200);
    CoreConfig cfg;
    cfg.regroup = true;
    TwoPassCpu cpu(p, cfg);
    const RunResult r = cpu.run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_GT(cpu.stats().regroupedGroups, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(TwoPass, RegroupNeverSlower)
{
    const Program p = l2ProbeLoop(300);
    CoreConfig plain;
    TwoPassCpu cpu_plain(p, plain);
    const Cycle plain_cycles = cpu_plain.run(10'000'000).cycles;
    CoreConfig re;
    re.regroup = true;
    TwoPassCpu cpu_re(p, re);
    const Cycle re_cycles = cpu_re.run(10'000'000).cycles;
    // Allow a whisker of slack for second-order cache/MSHR effects.
    EXPECT_LE(re_cycles, plain_cycles + plain_cycles / 50);
}

TEST(TwoPass, WawRelaxedInTheApipe)
{
    // Sec. 3.3: "WAW dependences are not enforced by the A-pipe
    // through the imposition of stalls". The baseline (wawStall on,
    // its EPIC default) holds the overwriting group until the
    // in-flight load lands — serializing it against a SECOND cold
    // miss behind it. The A-pipe passes the WAW and overlaps both
    // misses.
    ProgramBuilder b("waw", /*auto_stop=*/false);
    b.movi(intReg(1), 0x500000);
    b.stop();
    b.ld8(intReg(2), intReg(1), 0); // cold miss #1 into r2
    b.stop();
    b.movi(intReg(2), 7); // WAW with the in-flight load
    b.stop();
    b.ld8(intReg(3), intReg(1), 32768); // cold miss #2
    b.stop();
    b.addi(intReg(4), intReg(3), 1);
    b.stop();
    b.halt();
    const Program p = b.finalize();

    BaselineCpu base(p, CoreConfig());
    const Cycle base_cycles = base.run(100000).cycles;
    TwoPassCpu twop(p, CoreConfig());
    const Cycle twop_cycles = twop.run(100000).cycles;

    // The baseline serializes the two misses across the WAW stall;
    // two-pass overlaps them, saving roughly a memory latency.
    EXPECT_LT(twop_cycles + 100, base_cycles);
    EXPECT_EQ(twop.archRegs().read(intReg(2)), 7u);
    expectMatchesFunctional(p, twop);
}

TEST(TwoPass, BpipeKeepsDrainingDuringAdetRedirect)
{
    // Sec. 3.6: after an A-DET misprediction "the B-pipe may
    // continue to process during the redirection of the A-pipe as
    // long as the coupling queue has instructions remaining" — so
    // with equal branch behaviour, the two-pass machine shows FEWER
    // front-end stall cycles than the baseline on code whose
    // mispredicting branches resolve at A-DET.
    ProgramBuilder b("adet");
    b.movi(intReg(1), 0);
    b.movi(intReg(5), 200);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.addi(intReg(1), intReg(1),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(2), intReg(1), 17);
    b.andi(intReg(3), intReg(2), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(3), 1);
    b.br("odd");
    b.pred(predReg(3)); // ~50/50, register-resolvable
    b.addi(intReg(31), intReg(31), 2);
    b.br("join");
    b.label("odd");
    b.xori(intReg(31), intReg(31), 0x3c);
    b.label("join");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    const Program p = compiler::schedule(b.finalize());

    BaselineCpu base(p, CoreConfig());
    base.run(1'000'000);
    TwoPassCpu twop(p, CoreConfig());
    twop.run(1'000'000);

    ASSERT_GT(twop.stats().aDetMispredicts, 20u);
    EXPECT_EQ(twop.stats().bDetMispredicts, 0u);
    EXPECT_LT(twop.cycleAccounting().of(CycleClass::kFrontEndStall),
              base.cycleAccounting().of(CycleClass::kFrontEndStall));
}

TEST(TwoPassDeathTest, UndersizedCouplingQueueIsFatal)
{
    // A CQ smaller than the issue width would deadlock silently;
    // the constructor must refuse it.
    ProgramBuilder b("tinycq");
    b.halt();
    const Program p = b.finalize();
    CoreConfig cfg;
    cfg.couplingQueueSize = 4; // < the 8-wide issue width
    EXPECT_EXIT(TwoPassCpu cpu(p, cfg), ::testing::ExitedWithCode(1),
                "coupling queue");
}

TEST(TwoPassDeathTest, SecondRunPanics)
{
    ProgramBuilder b("once");
    b.halt();
    const Program p = b.finalize();
    TwoPassCpu cpu(p, CoreConfig());
    cpu.run(1000);
    EXPECT_DEATH(cpu.run(1000), "single-shot");
}

} // namespace
