/**
 * @file
 * Unit tests for the two-pass flush machinery: A-DET redirects,
 * B-DET misprediction flushes with A-file repair (Sec. 3.6), and
 * store-conflict flushes via the ALAT (Sec. 3.4).
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/twopass/twopass_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

void
expectMatchesFunctional(const Program &p, const TwoPassCpu &cpu)
{
    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
}

/**
 * Branch direction depends only on registers (never memory), so the
 * compare is always pre-executable: every misprediction resolves at
 * A-DET. A data-dependent ~50/50 pattern defeats the predictor.
 */
TEST(Flush, ADetResolvesRegisterOnlyBranches)
{
    ProgramBuilder b("adet");
    b.movi(intReg(1), 0);
    b.movi(intReg(5), 60);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.addi(intReg(1), intReg(1),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(2), intReg(1), 21);
    b.andi(intReg(3), intReg(2), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(3), 1);
    b.br("odd");
    b.pred(predReg(3));
    b.addi(intReg(31), intReg(31), 2);
    b.br("join");
    b.label("odd");
    b.addi(intReg(31), intReg(31), 5);
    b.label("join");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    const Program p = compiler::schedule(b.finalize());

    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    const TwoPassStats &s = cpu.stats();
    EXPECT_GT(s.aDetMispredicts, 5u);
    EXPECT_EQ(s.bDetMispredicts, 0u);
    EXPECT_EQ(s.branchesResolvedInB, 0u);
    expectMatchesFunctional(p, cpu);
}

/**
 * Branch direction depends on a load from a large (missing) table:
 * the compare defers, so mispredictions resolve at B-DET and the
 * A-file must be repaired from the B-file.
 */
Program
bDetProgram(int iters)
{
    ProgramBuilder b("bdet");
    b.movi(intReg(1), 0x300000);
    b.movi(intReg(5), iters);
    b.movi(intReg(31), 0);
    b.movi(intReg(9), 17);
    b.label("loop");
    b.addi(intReg(9), intReg(9),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(2), intReg(9), 30);
    b.andi(intReg(2), intReg(2), 8191);
    b.shli(intReg(2), intReg(2), 3);
    b.add(intReg(3), intReg(1), intReg(2));
    b.ld8(intReg(4), intReg(3), 0); // misses; the branch needs it
    b.andi(intReg(6), intReg(4), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(6), 1);
    b.br("odd");
    b.pred(predReg(3));
    b.addi(intReg(31), intReg(31), 2);
    b.br("join");
    b.label("odd");
    b.xori(intReg(31), intReg(31), 0x1F);
    b.label("join");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int e = 0; e < 8192; ++e)
        seq.poke64(0x300000 + e * 8, e * 2654435761ULL);
    return compiler::schedule(seq);
}

TEST(Flush, BDetFlushRepairsAndStaysCorrect)
{
    const Program p = bDetProgram(80);
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    const TwoPassStats &s = cpu.stats();
    EXPECT_GT(s.bDetMispredicts, 5u);
    EXPECT_GT(s.registersRepaired, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(Flush, BDetCostsMoreFrontEndThanBaselineWouldPay)
{
    const Program p = bDetProgram(80);
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    // Every B-DET flush idles the front end for at least the refill.
    EXPECT_GT(cpu.cycleAccounting().of(CycleClass::kFrontEndStall),
              cpu.stats().bDetMispredicts * 5);
}

/**
 * Store-conflict construction: an older store's data comes from a
 * slow load (so the store defers), and a younger load reads the
 * stored-to address. The A-pipe pre-executes the younger load past
 * the deferred store; when the store executes in the B-pipe it kills
 * the load's ALAT entry and the merge must flush.
 */
TEST(Flush, StoreConflictDetectedAndRepaired)
{
    ProgramBuilder b("conflict");
    b.movi(intReg(1), 0x400000); // cold table
    b.movi(intReg(2), 0x500);    // target address
    b.movi(intReg(5), 8);        // a few rounds
    b.movi(intReg(31), 0);
    b.label("loop");
    // Slow producer: a cold load (main memory).
    b.shli(intReg(6), intReg(5), 13);
    b.add(intReg(7), intReg(1), intReg(6));
    b.ld8(intReg(8), intReg(7), 0);
    // The store's DATA depends on the slow load: it defers.
    b.st8(intReg(2), 0, intReg(8));
    // A younger load of the same address: pre-executes in the A-pipe
    // (optimistically) and must be caught by the ALAT.
    b.ld8(intReg(9), intReg(2), 0);
    b.add(intReg(31), intReg(31), intReg(9));
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.movi(intReg(10), 0x100);
    b.st8(intReg(10), 0, intReg(31));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 9; ++i)
        seq.poke64(0x400000 + static_cast<Addr>(i) * 8192, i + 100);
    const Program p = compiler::schedule(seq);

    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    EXPECT_GT(cpu.stats().storeConflictFlushes, 0u);
    EXPECT_GT(cpu.stats().loadsPastDeferredStore, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(Flush, ForwardedStoreNeedsNoConflict)
{
    // When the store pre-executes (its data is ready), the younger
    // load forwards from the speculative store buffer: correct with
    // zero conflict flushes.
    ProgramBuilder b("forward");
    b.movi(intReg(2), 0x600);
    b.movi(intReg(5), 10);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.addi(intReg(8), intReg(5), 40); // ready data
    b.st8(intReg(2), 0, intReg(8));
    b.ld8(intReg(9), intReg(2), 0); // same address right behind
    b.add(intReg(31), intReg(31), intReg(9));
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    const Program p = compiler::schedule(b.finalize());
    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    EXPECT_EQ(cpu.stats().storeConflictFlushes, 0u);
    EXPECT_GT(cpu.stats().storeForwardings, 0u);
    expectMatchesFunctional(p, cpu);
}

TEST(Flush, WrongPathStoresNeverReachMemory)
{
    // The not-taken path contains a store to a sentinel address; the
    // predictor will sometimes speculate into it. The sentinel must
    // never be written architecturally.
    ProgramBuilder b("wrongpath");
    b.movi(intReg(1), 0x700000);
    b.movi(intReg(2), 0x777000); // sentinel
    b.movi(intReg(5), 40);
    b.movi(intReg(9), 3);
    b.label("loop");
    b.addi(intReg(9), intReg(9),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(3), intReg(9), 35);
    b.andi(intReg(3), intReg(3), 4095);
    b.shli(intReg(3), intReg(3), 3);
    b.add(intReg(4), intReg(1), intReg(3));
    b.ld8(intReg(6), intReg(4), 0);
    b.andi(intReg(7), intReg(6), 1);
    b.cmpi(CmpCond::kEq, predReg(3), predReg(4), intReg(7), 99);
    b.br("skip");
    b.pred(predReg(4)); // ALWAYS taken (7&1 != 99): skip the store
    b.movi(intReg(8), 0xBAD);
    b.st8(intReg(2), 0, intReg(8)); // fetched speculatively only
    b.label("skip");
    b.subi(intReg(5), intReg(5), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(5), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int e = 0; e < 4096; ++e)
        seq.poke64(0x700000 + e * 8, e);
    const Program p = compiler::schedule(seq);

    TwoPassCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    EXPECT_EQ(cpu.memState().read64(0x777000), 0u);
    expectMatchesFunctional(p, cpu);
}

} // namespace
