/**
 * @file
 * Stage-unit tests: the B-pipe and the feedback path driven directly
 * against hand-built structures, with no TwoPassCpu in the loop. The
 * PipeContext seam exists exactly so these scenarios — flush
 * recoveries, merge-time ALAT conflicts, DynID-gated feedback — can
 * be set up surgically instead of coaxed out of whole programs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/config.hh"
#include "cpu/core/observer.hh"
#include "cpu/frontend.hh"
#include "cpu/twopass/afile.hh"
#include "cpu/twopass/bpipe.hh"
#include "cpu/twopass/coupling_queue.hh"
#include "cpu/twopass/feedback.hh"
#include "cpu/twopass/pipe_context.hh"
#include "isa/builder.hh"
#include "memory/alat.hh"
#include "memory/hierarchy.hh"
#include "memory/sparse_memory.hh"
#include "memory/store_buffer.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/** Captures observer events for assertion. */
struct RecordingObserver : CoreObserver
{
    struct Flush
    {
        Cycle now;
        FlushKind kind;
        InstIdx target;
    };
    std::vector<Flush> flushes;

    void
    onFlush(Cycle now, FlushKind kind, InstIdx target) override
    {
        flushes.push_back({now, kind, target});
    }
};

/**
 * A tiny sequential program (every instruction its own issue group):
 *
 *   0: movi r1, 5
 *   1: movi r2, 7
 *   2: add  r3, r1, r2
 *   3: br target        (fallthrough 4, taken target 6)
 *   4: movi r3, 9
 *   5: halt
 *   6: movi r4, 11      <- "target"
 *   7: halt
 */
Program
stageProgram()
{
    ProgramBuilder b("stage");
    b.movi(intReg(1), 5);
    b.movi(intReg(2), 7);
    b.add(intReg(3), intReg(1), intReg(2));
    b.br("target");
    b.movi(intReg(3), 9);
    b.halt();
    b.label("target");
    b.movi(intReg(4), 11);
    b.halt();
    return b.finalize();
}

constexpr InstIdx kBranchIdx = 3;
constexpr InstIdx kBranchTarget = 6;
constexpr InstIdx kBranchFallthrough = 4;

/**
 * Every structure TwoPassCpu owns, stood up by hand and wrapped in a
 * PipeContext, exactly as the header promises a test can.
 */
struct StageFixture
{
    explicit StageFixture(const Program &p,
                          const CoreConfig &c = CoreConfig())
        : prog(p),
          cfg(c),
          hier(cfg.mem),
          pred(branch::makePredictor(cfg.predictorKind,
                                     cfg.predictorEntries)),
          fe(prog, cfg, *pred, hier, memory::Initiator::kApipe),
          ms(cfg),
          sbuf(cfg.storeBufferSize),
          alat(cfg.alatCapacity),
          ctx{prog, cfg, fe, *pred, hier, mem, ms, sbuf, alat, stats},
          feedback(cfg, ms, stats),
          bpipe(ctx, feedback)
    {
        mem.loadPages(prog.dataImage().pages());
    }

    const Program &prog;
    CoreConfig cfg;
    memory::SparseMemory mem;
    memory::Hierarchy hier;
    std::unique_ptr<branch::DirectionPredictor> pred;
    FrontEnd fe;
    MachineState ms;
    memory::StoreBuffer sbuf;
    memory::Alat alat;
    TwoPassStats stats;
    PipeContext ctx;
    FeedbackPath feedback;
    BPipe bpipe;

    // Shorthands into the machine-state block, so the test bodies
    // read like the structures were still stand-alone members.
    AFile &afile = ms.afile;
    RegFile &bfile = ms.regs;
    Scoreboard &bsb = ms.sb;
    CouplingQueue &cq = ms.cq;
};

CqEntry
preExecutedEntry(InstIdx idx, DynId id, Cycle ready_at = 0)
{
    CqEntry e;
    e.idx = idx;
    e.id = id;
    e.enqueuedAt = 0;
    e.status = CqStatus::kPreExecuted;
    e.predTrue = true;
    e.readyAt = ready_at;
    e.groupEnd = true;
    return e;
}

// --------------------------------------------------------------------
// B-DET misprediction flush (Sec. 3.6).
// --------------------------------------------------------------------

TEST(StageUnits, BDetFlushSquashesYoungerAndRepairsAfile)
{
    const Program p = stageProgram();
    StageFixture f(p);
    RecordingObserver obs;
    f.ms.observer = &obs;
    const Cycle now = 10;
    const DynId branch_id = 8;

    // Architectural truth the repair must restore.
    f.bfile.write(intReg(1), 111);
    f.bfile.write(intReg(2), 222);
    // r1 invalidated by a deferral, r2 speculatively overwritten.
    f.afile.markDeferred(intReg(1), 7);
    f.afile.writeExecuted(intReg(2), 999, branch_id, now,
                          PendingKind::kNone);
    // Speculative memory state straddling the branch id.
    f.sbuf.insert(5, 0x1000, 8, 0xAA);
    f.sbuf.insert(9, 0x1008, 8, 0xBB);
    f.alat.allocate(6, 0x2000, 8);
    f.alat.allocate(9, 0x2008, 8);
    // An in-flight feedback update younger than the branch.
    f.feedback.schedule(p.inst(0), 9, now);
    ASSERT_EQ(f.feedback.size(), 1u);
    // A halted A-pipe the flush must revive.
    f.ms.aHalted = true;

    CqEntry branch = preExecutedEntry(kBranchIdx, branch_id);
    branch.isBranch = true;
    branch.fallthrough = kBranchFallthrough;
    f.bpipe.bDetFlush(branch, /*taken=*/true, now);

    // Wrong-path speculative state (id > 8) is gone; older survives.
    ASSERT_EQ(f.sbuf.size(), 1u);
    EXPECT_EQ(f.sbuf.entries().front().id, 5u);
    EXPECT_EQ(f.alat.liveEntries(), 1u);
    EXPECT_TRUE(f.alat.check(6));
    EXPECT_TRUE(f.feedback.empty());

    // The A-file matches the B-file again.
    EXPECT_TRUE(f.afile.valid(intReg(1)));
    EXPECT_FALSE(f.afile.speculative(intReg(1)));
    EXPECT_EQ(f.afile.read(intReg(1)), 111u);
    EXPECT_FALSE(f.afile.speculative(intReg(2)));
    EXPECT_EQ(f.afile.read(intReg(2)), 222u);
    EXPECT_EQ(f.stats.registersRepaired, 2u);

    // Fetch restarts at the taken target after the repair penalty.
    const Cycle resume =
        now + 1 + f.cfg.branchResolveDelay + f.cfg.bFlushRepairPenalty;
    EXPECT_TRUE(f.fe.redirecting(resume - 1));
    EXPECT_FALSE(f.fe.redirecting(resume));
    EXPECT_FALSE(f.ms.aHalted);

    ASSERT_EQ(obs.flushes.size(), 1u);
    EXPECT_EQ(obs.flushes[0].kind, FlushKind::kBDet);
    EXPECT_EQ(obs.flushes[0].target, kBranchTarget);
    EXPECT_EQ(obs.flushes[0].now, now);
}

TEST(StageUnits, BDetFlushNotTakenResumesAtFallthrough)
{
    const Program p = stageProgram();
    StageFixture f(p);
    RecordingObserver obs;
    f.ms.observer = &obs;

    CqEntry branch = preExecutedEntry(kBranchIdx, 4);
    branch.isBranch = true;
    branch.fallthrough = kBranchFallthrough;
    f.bpipe.bDetFlush(branch, /*taken=*/false, 20);

    ASSERT_EQ(obs.flushes.size(), 1u);
    EXPECT_EQ(obs.flushes[0].target, kBranchFallthrough);
}

// --------------------------------------------------------------------
// Store-conflict flush (Sec. 3.4).
// --------------------------------------------------------------------

TEST(StageUnits, ConflictFlushClearsEverythingAndMarksRetry)
{
    const Program p = stageProgram();
    StageFixture f(p);
    RecordingObserver obs;
    f.ms.observer = &obs;
    const Cycle now = 10;

    f.bfile.write(intReg(1), 321);
    f.afile.markDeferred(intReg(1), 2);
    f.cq.push(preExecutedEntry(0, 1));
    f.cq.push(preExecutedEntry(1, 2));
    f.cq.push(preExecutedEntry(2, 3));
    f.sbuf.insert(1, 0x1000, 8, 0xAA);
    f.alat.allocate(3, 0x2000, 8);
    f.feedback.schedule(p.inst(1), 2, now);
    f.ms.aHalted = true;

    const CqEntry offender = f.cq.entry(2);
    f.bpipe.conflictFlush(offender, now);

    // A conflict flush is total: no speculative state survives.
    EXPECT_TRUE(f.cq.empty());
    EXPECT_TRUE(f.sbuf.empty());
    EXPECT_EQ(f.alat.liveEntries(), 0u);
    EXPECT_TRUE(f.feedback.empty());
    EXPECT_EQ(f.stats.registersRepaired, 1u);
    EXPECT_EQ(f.afile.read(intReg(1)), 321u);

    // The offending static load re-dispatches non-speculatively.
    EXPECT_TRUE(f.ms.conflictRetryContains(offender.idx));
    EXPECT_FALSE(f.ms.aHalted);

    // Refetch restarts at the head group's leader (idx 0 here).
    ASSERT_EQ(obs.flushes.size(), 1u);
    EXPECT_EQ(obs.flushes[0].kind, FlushKind::kConflict);
    EXPECT_EQ(obs.flushes[0].target, 0u);
}

TEST(StageUnits, StepDetectsMergeTimeAlatConflict)
{
    const Program p = stageProgram();
    StageFixture f(p);
    RecordingObserver obs;
    f.ms.observer = &obs;

    // A pre-executed load whose ALAT entry is gone (a conflicting
    // store intervened): the merge-time check must fire the flush.
    CqEntry load = preExecutedEntry(0, 1);
    load.isLoad = true;
    f.cq.push(load);

    RunResult res;
    const CycleClass cls = f.bpipe.step(/*now=*/5, res);

    EXPECT_EQ(cls, CycleClass::kFrontEndStall);
    EXPECT_EQ(f.stats.storeConflictFlushes, 1u);
    EXPECT_TRUE(f.cq.empty());
    EXPECT_TRUE(f.ms.conflictRetryContains(0));
    EXPECT_EQ(res.instsRetired, 0u);
    ASSERT_EQ(obs.flushes.size(), 1u);
    EXPECT_EQ(obs.flushes[0].kind, FlushKind::kConflict);
}

// --------------------------------------------------------------------
// Retire-window prescan classification.
// --------------------------------------------------------------------

TEST(StageUnits, PrescanClassifiesDanglingResults)
{
    const Program p = stageProgram();
    StageFixture f(p);
    const RetireWindow w{1, 1};

    // A pre-executed load whose miss has not returned: load stall.
    f.cq.push(preExecutedEntry(0, 1, /*ready_at=*/100));
    {
        // Mutating a queued entry is forbidden; rebuild instead.
        CouplingQueue &cq = f.cq;
        CqEntry e = cq.entry(0);
        cq.clear();
        e.isLoad = true;
        cq.push(e);
    }
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5), CycleClass::kLoadStall);

    // The same dangling result from a multi-cycle non-load.
    {
        CqEntry e = f.cq.entry(0);
        f.cq.clear();
        e.isLoad = false;
        f.cq.push(e);
    }
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5),
              CycleClass::kNonLoadDepStall);

    // Arrived (readyAt <= now): the window may retire.
    {
        CqEntry e = f.cq.entry(0);
        f.cq.clear();
        e.readyAt = 5;
        f.cq.push(e);
    }
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5), CycleClass::kUnstalled);
}

TEST(StageUnits, PrescanClassifiesDeferredOperandStalls)
{
    const Program p = stageProgram();
    StageFixture f(p);
    const RetireWindow w{1, 1};

    // Deferred "add r3, r1, r2" blocked on r1, in-flight from a load.
    CqEntry add = preExecutedEntry(2, 1);
    add.status = CqStatus::kDeferred;
    f.cq.push(add);
    f.bsb.setPending(intReg(1), 100, PendingKind::kLoad);
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5), CycleClass::kLoadStall);

    // Same producer, non-load kind: the other dependence class.
    f.bsb.setPending(intReg(1), 100, PendingKind::kNonLoad);
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5),
              CycleClass::kNonLoadDepStall);

    // Producer completes: ready to retire.
    f.bsb.setPending(intReg(1), 5, PendingKind::kNonLoad);
    EXPECT_EQ(f.bpipe.prescanWindow(w, 5), CycleClass::kUnstalled);
}

TEST(StageUnits, StepDistinguishesApipeLagFromFetchStarvation)
{
    const Program p = stageProgram();
    StageFixture f(p);
    RunResult res;

    // Empty CQ and an empty (never-ticked) front end: fetch starved.
    EXPECT_EQ(f.bpipe.step(1, res), CycleClass::kFrontEndStall);

    // Fill the fetch queue (the first group rides a cold icache
    // miss); once the head is ready the A-pipe is the laggard.
    Cycle c = 0;
    for (; c < 1000 && !f.fe.headReady(c); ++c) {
        f.hier.tick(c);
        f.fe.tick(c);
    }
    ASSERT_TRUE(f.fe.headReady(c));
    EXPECT_EQ(f.bpipe.step(c, res), CycleClass::kApipeStall);
}

// --------------------------------------------------------------------
// FeedbackPath: the DynID gate, latency, and squash (Sec. 3.5).
// --------------------------------------------------------------------

TEST(StageUnits, FeedbackAppliesAfterLatencyWhenDynIdMatches)
{
    const Program p = stageProgram();
    StageFixture f(p);
    const Cycle now = 10;

    f.bfile.write(intReg(1), 42);
    f.afile.markDeferred(intReg(1), 5);
    f.feedback.schedule(p.inst(0), 5, now); // movi r1: dest r1
    ASSERT_EQ(f.feedback.size(), 1u);

    // Not due yet at the schedule cycle (latency 1).
    f.feedback.apply(now);
    EXPECT_FALSE(f.afile.valid(intReg(1)));

    f.feedback.apply(now + f.cfg.feedbackLatency);
    EXPECT_TRUE(f.feedback.empty());
    EXPECT_TRUE(f.afile.valid(intReg(1)));
    EXPECT_EQ(f.afile.read(intReg(1)), 42u);
    EXPECT_EQ(f.stats.feedbackApplied, 1u);
    EXPECT_EQ(f.stats.feedbackDropped, 0u);
}

TEST(StageUnits, FeedbackStaleUpdateIsDroppedByDynIdGate)
{
    const Program p = stageProgram();
    StageFixture f(p);

    f.bfile.write(intReg(1), 42);
    // A younger instance (id 9) re-marked r1 after id 5 retired:
    // id 5's feedback must not revalidate the register.
    f.afile.markDeferred(intReg(1), 9);
    f.feedback.schedule(p.inst(0), 5, 0);
    f.feedback.apply(100);

    EXPECT_FALSE(f.afile.valid(intReg(1)));
    EXPECT_EQ(f.stats.feedbackApplied, 0u);
    EXPECT_EQ(f.stats.feedbackDropped, 1u);
}

TEST(StageUnits, FeedbackDisabledSchedulesNothing)
{
    const Program p = stageProgram();
    CoreConfig cfg;
    cfg.feedbackEnabled = false;
    StageFixture f(p, cfg);

    f.feedback.schedule(p.inst(0), 5, 0);
    EXPECT_TRUE(f.feedback.empty());
}

TEST(StageUnits, FeedbackSquashDropsOnlyYoungerUpdates)
{
    const Program p = stageProgram();
    StageFixture f(p);

    f.feedback.schedule(p.inst(0), 5, 0); // r1, id 5
    f.feedback.schedule(p.inst(1), 8, 0); // r2, id 8
    ASSERT_EQ(f.feedback.size(), 2u);

    f.feedback.squashYoungerThan(5);
    EXPECT_EQ(f.feedback.size(), 1u);

    f.feedback.clear();
    EXPECT_TRUE(f.feedback.empty());
}

} // namespace
