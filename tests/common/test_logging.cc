/** @file Unit tests for error reporting and trace capture. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/trace.hh"

namespace
{

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(ff_panic("boom ", 42), "boom 42");
}

TEST(LoggingDeathTest, PanicIfTriggersOnTrue)
{
    EXPECT_DEATH(ff_panic_if(1 + 1 == 2, "math works"), "math works");
}

TEST(Logging, PanicIfIgnoresFalse)
{
    ff_panic_if(false, "never");
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(ff_fatal("config ", "bad"),
                ::testing::ExitedWithCode(1), "config bad");
}

TEST(LoggingDeathTest, FatalIfTriggersOnTrue)
{
    EXPECT_EXIT(ff_fatal_if(true, "nope"),
                ::testing::ExitedWithCode(1), "nope");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    ff_warn("just a warning ", 1);
    ff_inform("status ", 2);
    SUCCEED();
}

TEST(Trace, DisabledByDefaultCategory)
{
    ff::trace::disable();
    EXPECT_FALSE(ff::trace::enabled(ff::trace::kMem));
}

TEST(Trace, EnableIsBitwise)
{
    ff::trace::disable();
    ff::trace::enable(ff::trace::kMem | ff::trace::kFetch);
    EXPECT_TRUE(ff::trace::enabled(ff::trace::kMem));
    EXPECT_TRUE(ff::trace::enabled(ff::trace::kFetch));
    EXPECT_FALSE(ff::trace::enabled(ff::trace::kBranch));
    ff::trace::disable();
}

TEST(Trace, CaptureBuffersLines)
{
    ff::trace::disable();
    ff::trace::enable(ff::trace::kExec);
    ff::trace::captureToBuffer(true);
    ff_trace(ff::trace::kExec, 123, "TAG", "hello " << 7);
    ff_trace(ff::trace::kBranch, 124, "NOPE", "filtered");
    const std::string buf = ff::trace::takeBuffer();
    ff::trace::captureToBuffer(false);
    ff::trace::disable();

    EXPECT_NE(buf.find("hello 7"), std::string::npos);
    EXPECT_NE(buf.find("123"), std::string::npos);
    EXPECT_NE(buf.find("TAG"), std::string::npos);
    EXPECT_EQ(buf.find("filtered"), std::string::npos);
}

TEST(Trace, TakeBufferClears)
{
    ff::trace::enable(ff::trace::kExec);
    ff::trace::captureToBuffer(true);
    ff_trace(ff::trace::kExec, 1, "T", "x");
    (void)ff::trace::takeBuffer();
    EXPECT_TRUE(ff::trace::takeBuffer().empty());
    ff::trace::captureToBuffer(false);
    ff::trace::disable();
}

} // namespace
