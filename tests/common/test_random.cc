/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace
{

using ff::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i) {
        if (a.next() != b.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    // All five values should appear in 2000 draws.
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(17);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.nextBelow(kBuckets)];
    for (int c : counts) {
        // Expected 10000 per bucket; allow 5% deviation.
        EXPECT_GT(c, 9500);
        EXPECT_LT(c, 10500);
    }
}

TEST(RngDeathTest, NextBelowZeroPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.nextBelow(0), "nextBelow");
}

TEST(RngDeathTest, BadRangePanics)
{
    Rng r(1);
    EXPECT_DEATH(r.nextRange(3, 2), "hi < lo");
}

} // namespace
