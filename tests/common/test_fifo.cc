/** @file Unit tests for the bounded FIFO. */

#include <gtest/gtest.h>

#include "common/fifo.hh"

namespace
{

using ff::BoundedFifo;

TEST(BoundedFifo, StartsEmpty)
{
    BoundedFifo<int> f(4);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());
    EXPECT_EQ(f.size(), 0u);
    EXPECT_EQ(f.capacity(), 4u);
    EXPECT_EQ(f.freeSlots(), 4u);
}

TEST(BoundedFifo, FifoOrder)
{
    BoundedFifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.front(), 1);
    f.pop();
    EXPECT_EQ(f.front(), 2);
    f.pop();
    EXPECT_EQ(f.front(), 3);
}

TEST(BoundedFifo, FullAtCapacity)
{
    BoundedFifo<int> f(2);
    f.push(1);
    EXPECT_FALSE(f.full());
    f.push(2);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.freeSlots(), 0u);
}

TEST(BoundedFifo, RandomAccess)
{
    BoundedFifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i * 10);
    EXPECT_EQ(f.at(0), 0);
    EXPECT_EQ(f.at(4), 40);
    f.at(2) = 99;
    EXPECT_EQ(f.at(2), 99);
}

TEST(BoundedFifo, PopBackRemovesYoungest)
{
    BoundedFifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.back(), 3);
    f.popBack();
    EXPECT_EQ(f.back(), 2);
    EXPECT_EQ(f.size(), 2u);
}

TEST(BoundedFifo, ClearEmpties)
{
    BoundedFifo<int> f(4);
    f.push(1);
    f.push(2);
    f.clear();
    EXPECT_TRUE(f.empty());
    f.push(3); // usable after clear
    EXPECT_EQ(f.front(), 3);
}

TEST(BoundedFifo, IterationOldestFirst)
{
    BoundedFifo<int> f(4);
    f.push(7);
    f.push(8);
    int expected = 7;
    for (int v : f)
        EXPECT_EQ(v, expected++);
}

TEST(BoundedFifo, ReusableAfterDrain)
{
    BoundedFifo<int> f(2);
    for (int round = 0; round < 10; ++round) {
        f.push(round);
        f.push(round + 1);
        EXPECT_TRUE(f.full());
        f.pop();
        f.pop();
        EXPECT_TRUE(f.empty());
    }
}

TEST(BoundedFifoDeathTest, OverflowPanics)
{
    BoundedFifo<int> f(1);
    f.push(1);
    EXPECT_DEATH(f.push(2), "full fifo");
}

TEST(BoundedFifoDeathTest, UnderflowPanics)
{
    BoundedFifo<int> f(1);
    EXPECT_DEATH(f.pop(), "empty fifo");
    EXPECT_DEATH(f.front(), "empty fifo");
    EXPECT_DEATH(f.popBack(), "empty fifo");
}

TEST(BoundedFifoDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(BoundedFifo<int>(0), "zero-capacity");
}

} // namespace
