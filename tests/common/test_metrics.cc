/**
 * @file
 * Unit tests of the metrics primitives: JSON writer syntax and
 * escaping, histogram binning/mean/quantile, time-series epoch
 * folding, and registry idempotence. The export path (schema
 * conformance of whole documents) is covered by the bench-smoke
 * gate; these pin the building blocks it rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/metrics.hh"

namespace
{

using namespace ff;
using metrics::Histogram;
using metrics::JsonWriter;
using metrics::Registry;
using metrics::TimeSeries;

std::string
render(void (*body)(JsonWriter &))
{
    std::ostringstream os;
    JsonWriter w(os);
    body(w);
    return os.str();
}

TEST(JsonWriter, CommasAndNestingAreCorrect)
{
    const std::string doc = render([](JsonWriter &w) {
        w.beginObject();
        w.kv("a", std::uint64_t(1));
        w.key("b");
        w.beginArray();
        w.value(std::uint64_t(2));
        w.value(std::uint64_t(3));
        w.beginObject();
        w.endObject();
        w.endArray();
        w.kv("c", true);
        w.endObject();
    });
    EXPECT_EQ(doc, R"({"a":1,"b":[2,3,{}],"c":true})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t\x01"),
              "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesAreSerializedAsZero)
{
    const std::string doc = render([](JsonWriter &w) {
        w.beginArray();
        w.value(std::nan(""));
        w.value(1.5);
        w.endArray();
    });
    EXPECT_EQ(doc, "[0,1.5]");
}

TEST(Histogram, BinsMeanAndQuantiles)
{
    Histogram h(0, 10, 5); // buckets of width 2
    for (int v : {0, 1, 3, 5, 9, 9})
        h.sample(v);
    h.sample(-1); // underflow
    h.sample(10); // overflow (max is exclusive)

    EXPECT_EQ(h.samples(), 8u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 2u); // 0, 1
    EXPECT_EQ(h.buckets()[1], 1u); // 3
    EXPECT_EQ(h.buckets()[2], 1u); // 5
    EXPECT_EQ(h.buckets()[4], 2u); // 9, 9
    EXPECT_DOUBLE_EQ(h.mean(), 36.0 / 8.0);
    EXPECT_EQ(h.quantile(0.0), 0);  // lands in the underflow tail
    EXPECT_EQ(h.quantile(1.0), 10); // lands in the overflow tail
    EXPECT_LE(h.quantile(0.5), 5);
}

TEST(TimeSeries, FoldsSamplesIntoEpochMeans)
{
    TimeSeries s(100);
    s.sample(0, 1.0);
    s.sample(50, 3.0);  // epoch 0 mean: 2.0
    s.sample(150, 5.0); // epoch 1 mean: 5.0
    s.sample(420, 7.0); // epochs 2-3 empty (mean 0), epoch 4 partial
    s.finish();

    ASSERT_EQ(s.points().size(), 5u);
    EXPECT_DOUBLE_EQ(s.points()[0], 2.0);
    EXPECT_DOUBLE_EQ(s.points()[1], 5.0);
    EXPECT_DOUBLE_EQ(s.points()[2], 0.0);
    EXPECT_DOUBLE_EQ(s.points()[3], 0.0);
    EXPECT_DOUBLE_EQ(s.points()[4], 7.0);
}

TEST(Registry, NamesAreIdempotentPerKind)
{
    Registry reg;
    ++reg.counter("events");
    ++reg.counter("events");
    EXPECT_EQ(reg.counter("events").value(), 2u);

    Histogram &h = reg.histogram("depth", 0, 8, 8);
    h.sample(3);
    EXPECT_EQ(reg.histogram("depth", 0, 8, 8).samples(), 1u);

    EXPECT_EQ(reg.counters().size(), 1u);
    EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(Registry, ToJsonEmitsTheThreeKindMaps)
{
    Registry reg;
    ++reg.counter("c");
    reg.histogram("h", 0, 4, 2).sample(1);
    reg.series("s", 10).sample(5, 2.0);
    reg.finish();

    std::ostringstream os;
    JsonWriter w(os);
    reg.toJson(w);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"counters\":{\"c\":1}"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"h\":{\"min\":0,\"max\":4"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"s\":{\"epochCycles\":10,\"points\":[2]"),
              std::string::npos)
        << doc;
}

} // namespace
