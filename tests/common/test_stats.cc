/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace
{

using namespace ff::stats;

TEST(Scalar, StartsAtZero)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, IncrementAndAdd)
{
    Scalar s;
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
}

TEST(Scalar, Reset)
{
    Scalar s;
    s += 7;
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Average, Reset)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsInRange)
{
    Distribution d(0, 10, 5); // buckets of width 2
    d.sample(0);
    d.sample(1);
    d.sample(9);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[4], 1u);
    EXPECT_EQ(d.samples(), 3u);
}

TEST(Distribution, UnderflowAndOverflow)
{
    Distribution d(0, 10, 5);
    d.sample(-1);
    d.sample(10); // max is exclusive
    d.sample(100);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.samples(), 3u);
}

TEST(Distribution, MeanIncludesOutOfRange)
{
    Distribution d(0, 10, 2);
    d.sample(2);
    d.sample(100);
    EXPECT_DOUBLE_EQ(d.mean(), 51.0);
}

TEST(Distribution, Reset)
{
    Distribution d(0, 4, 2);
    d.sample(1);
    d.sample(-5);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.buckets()[0], 0u);
}

TEST(Distribution, NegativeRange)
{
    Distribution d(-8, 8, 4);
    d.sample(-8);
    d.sample(-1);
    d.sample(7);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[3], 1u);
}

TEST(StatGroup, RegisterAndDump)
{
    StatGroup g("core");
    Scalar &s = g.addScalar("cycles", "total cycles");
    s += 5;
    Average &a = g.addAverage("occupancy");
    a.sample(1.0);
    g.addDistribution("lat", 0, 100, 10);

    const std::string dump = g.dump();
    EXPECT_NE(dump.find("core.cycles 5"), std::string::npos);
    EXPECT_NE(dump.find("total cycles"), std::string::npos);
    EXPECT_NE(dump.find("core.occupancy"), std::string::npos);
    EXPECT_NE(dump.find("core.lat"), std::string::npos);
}

TEST(StatGroup, LookupByName)
{
    StatGroup g("x");
    g.addScalar("a") += 3;
    EXPECT_EQ(g.scalar("a").value(), 3u);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("x");
    g.addScalar("a") += 3;
    g.addAverage("b").sample(2.0);
    g.reset();
    EXPECT_EQ(g.scalar("a").value(), 0u);
    EXPECT_EQ(g.averages().at("b").count(), 0u);
}

TEST(StatGroupDeathTest, DuplicateScalarPanics)
{
    StatGroup g("x");
    g.addScalar("a");
    EXPECT_DEATH(g.addScalar("a"), "duplicate");
}

TEST(StatGroupDeathTest, UnknownScalarPanics)
{
    StatGroup g("x");
    EXPECT_DEATH(g.scalar("missing"), "unknown scalar");
}

TEST(DistributionDeathTest, BadRangePanics)
{
    EXPECT_DEATH(Distribution(5, 5, 1), "bad distribution range");
}

} // namespace
