/**
 * @file
 * SHA-256 validation against the FIPS 180-4 / NIST CAVP published
 * vectors, plus the incremental-update and one-shot-reuse contracts.
 * The result cache's content addresses are only as trustworthy as
 * this implementation.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hash.hh"

namespace
{

using ff::Sha256;

std::string
hexOf(const std::string &msg)
{
    return Sha256::hex(msg.data(), msg.size());
}

TEST(Sha256, EmptyMessage)
{
    EXPECT_EQ(hexOf(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hexOf("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(
        hexOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039"
        "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(h.hexDigest(),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary)
{
    // 64 bytes = exactly one block; the padding must spill into a
    // second block.
    EXPECT_EQ(hexOf(std::string(64, 'x')),
              Sha256::hex(std::string(64, 'x').data(), 64));
    Sha256 a;
    a.update(std::string(64, 'q'));
    Sha256 b;
    b.update(std::string(32, 'q'));
    b.update(std::string(32, 'q'));
    EXPECT_EQ(a.hexDigest(), b.hexDigest());
}

TEST(Sha256, ChunkingIsTransparent)
{
    const std::string msg =
        "the quick brown fox jumps over the lazy dog, twice over";
    Sha256 whole;
    whole.update(msg);
    Sha256 bytewise;
    for (const char c : msg)
        bytewise.update(&c, 1);
    EXPECT_EQ(whole.hexDigest(), bytewise.hexDigest());
}

TEST(Sha256, DistinctMessagesDistinctDigests)
{
    EXPECT_NE(hexOf("abc"), hexOf("abd"));
    EXPECT_NE(hexOf(""), hexOf(std::string(1, '\0')));
}

TEST(Sha256DeathTest, DigestIsOneShot)
{
    Sha256 h;
    h.update("abc");
    (void)h.digest();
    EXPECT_DEATH((void)h.digest(), "one-shot");
    Sha256 g;
    (void)g.digest();
    EXPECT_DEATH(g.update("more"), "after digest");
}

} // namespace
