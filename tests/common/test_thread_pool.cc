/** @file Unit tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace
{

using namespace ff;

TEST(ThreadPool, ReportsRequestedThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<unsigned> ran{0};
    std::vector<std::future<void>> done;
    for (unsigned i = 0; i < 100; ++i) {
        done.push_back(pool.submit(
            [&] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
    for (auto &f : done)
        f.get();
    EXPECT_EQ(ran.load(), 100u);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        [] { throw std::runtime_error("task failure"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<unsigned>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ParallelForWritesAreVisibleAndOrdered)
{
    // Results written to caller-indexed slots arrive intact: the
    // determinism contract of runBatch at the pool level.
    ThreadPool pool(4);
    constexpr std::size_t n = 500;
    std::vector<std::size_t> out(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForZeroItemsIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](std::size_t i) {
                             ran.fetch_add(1,
                                           std::memory_order_relaxed);
                             if (i == 13)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must survive a throwing batch and accept more work.
    std::atomic<unsigned> after{0};
    pool.parallelFor(8, [&](std::size_t) {
        after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 8u);
}

TEST(ThreadPool, WorkIsActuallyDistributed)
{
    // With tasks that momentarily block, more than one worker must
    // participate (steals or round-robin — either is fine).
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> seen;
    pool.parallelFor(64, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(std::this_thread::get_id());
    });
    EXPECT_GE(seen.size(), 1u);
    if (std::thread::hardware_concurrency() > 1) {
        EXPECT_GT(seen.size(), 1u);
    }
}

TEST(ThreadPool, DestructorCompletesPendingWork)
{
    std::atomic<unsigned> ran{0};
    {
        ThreadPool pool(2);
        for (unsigned i = 0; i < 32; ++i) {
            pool.submit(
                [&] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
        // No explicit wait: the destructor drains the queues.
    }
    EXPECT_EQ(ran.load(), 32u);
}

TEST(ThreadPool, DefaultJobCountIsPositive)
{
    EXPECT_GE(defaultJobCount(), 1u);
}

} // namespace
