/**
 * @file
 * Contract tests of the serialization primitives every snapshot and
 * cache entry is built from: explicit little-endian layout, faithful
 * round trips, and — the load-bearing property — a Reader that can
 * never be driven to allocate wildly or read out of bounds by
 * corrupt input; it latches a sticky failure and returns zeros.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"

namespace
{

using ff::serial::Reader;
using ff::serial::Writer;
using ff::serial::tag;

TEST(Serialize, PrimitiveRoundTrip)
{
    Writer w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.boolean(true);
    w.boolean(false);
    w.f64(3.14159265358979);
    w.str("flea-flicker");

    Reader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
    EXPECT_EQ(r.str(), "flea-flicker");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, LayoutIsLittleEndian)
{
    Writer w;
    w.u32(0x11223344u);
    const std::vector<std::uint8_t> &b = w.buffer();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0x44);
    EXPECT_EQ(b[1], 0x33);
    EXPECT_EQ(b[2], 0x22);
    EXPECT_EQ(b[3], 0x11);
}

TEST(Serialize, NegativeZeroAndNanBitsSurvive)
{
    Writer w;
    w.f64(-0.0);
    Reader r(w.buffer());
    const double v = r.f64();
    EXPECT_EQ(v, 0.0);
    EXPECT_TRUE(std::signbit(v));
}

TEST(Serialize, SectionTagsMatchAndMismatch)
{
    Writer w;
    w.section(tag("CORE"));
    w.u32(7);
    Reader ok(w.buffer());
    EXPECT_TRUE(ok.section(tag("CORE")));
    EXPECT_EQ(ok.u32(), 7u);

    Reader bad(w.buffer());
    EXPECT_FALSE(bad.section(tag("HIER")));
    EXPECT_FALSE(bad.ok());
}

TEST(Serialize, TruncationLatchesFailure)
{
    Writer w;
    w.u64(1);
    std::vector<std::uint8_t> bytes = w.buffer();
    bytes.resize(4); // half a u64
    Reader r(bytes);
    (void)r.u64(); // wide reads may return partially-read low bytes
    EXPECT_FALSE(r.ok());
    // Sticky: even in-bounds reads return zero after a failure.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, SeqRejectsImplausibleCounts)
{
    Writer w;
    w.u64(1ull << 60); // claims 2^60 elements
    Reader r(w.buffer());
    EXPECT_EQ(r.seq(8), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, SeqAcceptsExactFit)
{
    Writer w;
    w.u64(3);
    w.u32(10);
    w.u32(20);
    w.u32(30);
    Reader r(w.buffer());
    ASSERT_EQ(r.seq(4), 3u);
    EXPECT_EQ(r.u32(), 10u);
    EXPECT_EQ(r.u32(), 20u);
    EXPECT_EQ(r.u32(), 30u);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, BytesZeroFillOnFailure)
{
    Writer w;
    w.u8(0xff);
    Reader r(w.buffer());
    std::uint8_t buf[4] = {1, 2, 3, 4};
    r.bytes(buf, sizeof(buf)); // only 1 byte available
    EXPECT_FALSE(r.ok());
    for (const std::uint8_t b : buf)
        EXPECT_EQ(b, 0u);
}

TEST(Serialize, EmptyStringRoundTrip)
{
    Writer w;
    w.str("");
    Reader r(w.buffer());
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, TakeMovesBuffer)
{
    Writer w;
    w.u16(0x1234);
    const std::vector<std::uint8_t> bytes = w.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_TRUE(w.buffer().empty());
}

} // namespace
