/** @file Unit tests for the checkpoint-based run-ahead core. */

#include <gtest/gtest.h>

#include "compiler/scheduler.hh"
#include "cpu/baseline/baseline_cpu.hh"
#include "cpu/functional/functional_cpu.hh"
#include "cpu/runahead/runahead_cpu.hh"
#include "isa/builder.hh"

namespace
{

using namespace ff;
using namespace ff::cpu;
using namespace ff::isa;

/** Computable-index probe loop over a cold 2MB region. */
Program
missLoop(int iters)
{
    ProgramBuilder b("ra");
    b.movi(intReg(1), 0x100000);
    b.movi(intReg(2), iters);
    b.movi(intReg(3), 5);
    b.movi(intReg(31), 0);
    b.label("loop");
    b.addi(intReg(3), intReg(3),
           static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(intReg(4), intReg(3), 38);
    b.andi(intReg(4), intReg(4), 32767);
    b.shli(intReg(4), intReg(4), 6);
    b.add(intReg(5), intReg(1), intReg(4));
    b.ld8(intReg(6), intReg(5), 0);
    b.add(intReg(31), intReg(31), intReg(6));
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.movi(intReg(7), 0x100);
    b.st8(intReg(7), 0, intReg(31));
    b.halt();
    Program seq = b.finalize();
    for (int e = 0; e < 32768; ++e)
        seq.poke64(0x100000 + static_cast<Addr>(e) * 64, e * 3 + 7);
    return compiler::schedule(seq);
}

TEST(Runahead, EntersEpisodesUnderLoadStalls)
{
    const Program p = missLoop(150);
    RunaheadCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    EXPECT_GT(cpu.runaheadStats().episodes, 20u);
    EXPECT_GT(cpu.runaheadStats().runaheadCycles, 0u);
    EXPECT_GT(cpu.runaheadStats().runaheadLoads, 0u);
}

TEST(Runahead, MatchesFunctionalReference)
{
    const Program p = missLoop(100);
    FunctionalCpu ref(p);
    auto fr = ref.run();
    RunaheadCpu cpu(p, CoreConfig());
    const RunResult r = cpu.run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.instsRetired, fr.instsExecuted);
    EXPECT_EQ(cpu.archRegs().fingerprint(), ref.regs().fingerprint());
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
}

TEST(Runahead, PrefetchingBeatsTheBaseline)
{
    const Program p = missLoop(200);
    BaselineCpu base(p, CoreConfig());
    const Cycle base_cycles = base.run(10'000'000).cycles;
    RunaheadCpu ra(p, CoreConfig());
    const Cycle ra_cycles = ra.run(10'000'000).cycles;
    // Run-ahead warms the caches during stalls: solidly faster on an
    // overlappable miss stream.
    EXPECT_LT(ra_cycles, base_cycles);
}

TEST(Runahead, EntryDelayReducesEpisodes)
{
    const Program p = missLoop(100);
    CoreConfig eager;
    eager.runaheadEntryDelay = 0;
    RunaheadCpu cpu_eager(p, eager);
    ASSERT_TRUE(cpu_eager.run(10'000'000).halted);

    CoreConfig lazy;
    lazy.runaheadEntryDelay = 30;
    RunaheadCpu cpu_lazy(p, lazy);
    ASSERT_TRUE(cpu_lazy.run(10'000'000).halted);

    EXPECT_LE(cpu_lazy.runaheadStats().episodes,
              cpu_eager.runaheadStats().episodes);
}

TEST(Runahead, RunaheadStoresNeverCommit)
{
    // A store lies behind the stalled load; run-ahead executes it
    // into the discardable overlay only. After exit it re-executes
    // normally — memory must match the reference exactly (covered by
    // fingerprints) and a sentinel past the program's HALT must stay
    // untouched even though run-ahead may race past it.
    ProgramBuilder b("rastore");
    b.movi(intReg(1), 0x200000);
    b.movi(intReg(2), 0x300000);
    b.ld8(intReg(3), intReg(1), 0);   // cold miss: triggers run-ahead
    b.addi(intReg(4), intReg(3), 1);  // stalls on it
    b.st8(intReg(2), 0, intReg(4));   // executed in run-ahead first
    b.halt();
    Program seq = b.finalize();
    seq.poke64(0x200000, 41);
    const Program p = compiler::schedule(seq);

    RunaheadCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(1'000'000).halted);
    EXPECT_EQ(cpu.memState().read64(0x300000), 42u);

    FunctionalCpu ref(p);
    ref.run();
    EXPECT_EQ(cpu.memState().fingerprint(), ref.mem().fingerprint());
}

TEST(Runahead, InvPropagationSkipsDependentLoads)
{
    // A dependent chase cannot be prefetched by run-ahead (addresses
    // are INV): episodes happen but issue few useful loads.
    ProgramBuilder b("chase");
    b.movi(intReg(1), 0x400000);
    b.movi(intReg(2), 20);
    b.label("loop");
    b.ld8(intReg(1), intReg(1), 0); // serial chase
    b.subi(intReg(2), intReg(2), 1);
    b.cmpi(CmpCond::kGt, predReg(1), predReg(2), intReg(2), 0);
    b.br("loop");
    b.pred(predReg(1));
    b.halt();
    Program seq = b.finalize();
    for (int i = 0; i < 30; ++i) {
        seq.poke64(0x400000 + static_cast<Addr>(i) * 0x40000,
                   0x400000 + static_cast<Addr>(i + 1) * 0x40000);
    }
    const Program p = compiler::schedule(seq);

    RunaheadCpu cpu(p, CoreConfig());
    ASSERT_TRUE(cpu.run(10'000'000).halted);
    EXPECT_GT(cpu.runaheadStats().invResults, 0u);
    // The chase itself defeats prefetching: each episode's loads are
    // bounded by what is computable (here almost nothing).
    EXPECT_LT(cpu.runaheadStats().runaheadLoads,
              cpu.runaheadStats().episodes * 3);
}

} // namespace
