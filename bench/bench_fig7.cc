/**
 * @file
 * Reproduces Figure 7: the distribution of initiated data-access
 * cycles (access count weighted by the servicing level's latency)
 * split by initiating pipe (A vs B; the whole bar for the baseline),
 * for base / 2P / 2Pre across the suite. The paper's observation to
 * reproduce: "for each benchmark, the majority of the access latency
 * is initiated in the A-pipe" — except gap, which "executes most of
 * its substantial number of main memory accesses in the B-pipe".
 *
 * Usage: bench_fig7 [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

double
pipeCycles(const memory::AccessStats &s, memory::Initiator who)
{
    double total = 0;
    for (unsigned l = 0; l < memory::kNumMemLevels; ++l)
        total += static_cast<double>(
            s.weightedCycles[static_cast<unsigned>(who)][l]);
    return total;
}

std::vector<std::string>
levelCells(const memory::AccessStats &s, memory::Initiator who,
           double norm)
{
    std::vector<std::string> cells;
    for (unsigned l = 0; l < memory::kNumMemLevels; ++l) {
        cells.push_back(sim::fixed(
            static_cast<double>(
                s.weightedCycles[static_cast<unsigned>(who)][l]) /
                norm,
            3));
    }
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Figure 7: distribution of initiated access "
                "cycles (latency-weighted, normalized to base) "
                "===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "cfg", "pipe", "L1", "L2", "L3", "Mem",
              "share"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPassRegroup, {}},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &base = outcomes[wi * 3 + 0];
        const double norm =
            pipeCycles(base.accesses, memory::Initiator::kBaseline);

        {
            std::vector<std::string> cells{name, "base", "-"};
            auto lv = levelCells(base.accesses,
                                 memory::Initiator::kBaseline, norm);
            cells.insert(cells.end(), lv.begin(), lv.end());
            cells.push_back("1.000");
            t.row(cells);
        }

        for (std::size_t vi = 1; vi < 3; ++vi) {
            const sim::SimOutcome &o = outcomes[wi * 3 + vi];
            const double a =
                pipeCycles(o.accesses, memory::Initiator::kApipe);
            const double bb =
                pipeCycles(o.accesses, memory::Initiator::kBpipe);
            for (memory::Initiator who :
                 {memory::Initiator::kApipe,
                  memory::Initiator::kBpipe}) {
                std::vector<std::string> cells{
                    name, sim::cpuKindName(variants[vi].kind),
                    who == memory::Initiator::kApipe ? "A" : "B"};
                auto lv = levelCells(o.accesses, who, norm);
                cells.insert(cells.end(), lv.begin(), lv.end());
                const double mine =
                    who == memory::Initiator::kApipe ? a : bb;
                cells.push_back(
                    sim::pct(a + bb > 0 ? mine / (a + bb) : 0.0));
                t.row(cells);
            }
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n('share' is the pipe's fraction of that config's "
                "initiated access cycles; the paper reports an\n"
                " A-pipe majority everywhere but 254.gap)\n");
    return 0;
}
