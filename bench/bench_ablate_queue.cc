/**
 * @file
 * Ablation S5 (Sec. 3.1 text): "the queue size was set to 64
 * instructions. The results were not particularly sensitive to
 * reasonable variations in this parameter." Sweeps the coupling
 * queue capacity and reports 2P cycles normalized to the 64-entry
 * design point.
 *
 * Usage: bench_ablate_queue [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<unsigned> sizes = {16, 32, 48, 64, 96, 128, 256};

    std::printf("=== Ablation S5: coupling queue size (2P cycles, "
                "normalized to 64 entries) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned s : sizes)
        hdr.push_back("cq" + std::to_string(s));
    t.header(hdr);

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    std::vector<sim::SweepVariant> variants;
    for (unsigned s : sizes) {
        cpu::CoreConfig cfg = sim::table1Config();
        cfg.couplingQueueSize = s;
        variants.push_back({sim::CpuKind::kTwoPass, cfg});
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        std::map<unsigned, double> cycles;
        for (std::size_t si = 0; si < sizes.size(); ++si) {
            cycles[sizes[si]] = static_cast<double>(
                outcomes[wi * sizes.size() + si].run.cycles);
        }
        std::vector<std::string> row = {suite[wi].name};
        for (unsigned s : sizes)
            row.push_back(sim::fixed(cycles[s] / cycles[64], 3));
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: a shallow basin around the paper's "
                "64-entry choice; very small queues throttle the "
                "A-pipe's lead)\n");
    return 0;
}
