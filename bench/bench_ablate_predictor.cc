/**
 * @file
 * Ablation: predictor quality vs the two-pass design. Because a
 * misprediction that resolves at B-DET pays the lengthened two-pass
 * flush (Sec. 3.6), the two-pass machine is *more* sensitive to
 * predictor quality than the baseline. Sweeps bimodal / gshare /
 * tournament on both machines over the branchy benchmarks.
 *
 * Usage: bench_ablate_predictor [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<branch::PredictorKind> kinds = {
        branch::PredictorKind::kBimodal,
        branch::PredictorKind::kGshare,
        branch::PredictorKind::kTournament,
    };

    std::printf("=== Ablation: direction-predictor quality "
                "(cycles normalized to base/gshare) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (auto k : kinds)
        hdr.push_back(std::string("base-") +
                      branch::predictorKindName(k));
    for (auto k : kinds)
        hdr.push_back(std::string("2P-") +
                      branch::predictorKindName(k));
    hdr.push_back("misp%-bimodal");
    hdr.push_back("misp%-gshare");
    t.header(hdr);

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    // Column 0 is the Table 1 design point (base + gshare), used as
    // the normalizer; then the base and 2P predictor sweeps.
    std::vector<sim::SweepVariant> variants;
    variants.push_back({sim::CpuKind::kBaseline, {}});
    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass}) {
        for (auto pk : kinds) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.predictorKind = pk;
            variants.push_back({kind, cfg});
        }
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const sim::SimOutcome &ref =
            outcomes[wi * variants.size() + 0];
        const double norm = static_cast<double>(ref.run.cycles);

        std::vector<std::string> row = {suite[wi].name};
        double misp_bimodal = 0, misp_gshare = 0;
        for (std::size_t vi = 1; vi < variants.size(); ++vi) {
            const sim::SimOutcome &o =
                outcomes[wi * variants.size() + vi];
            row.push_back(sim::fixed(
                static_cast<double>(o.run.cycles) / norm, 3));
            const auto pk = kinds[(vi - 1) % kinds.size()];
            if (variants[vi].kind == sim::CpuKind::kBaseline &&
                o.branches.lookups > 0) {
                const double rate =
                    static_cast<double>(o.branches.mispredicts) /
                    static_cast<double>(o.branches.lookups);
                if (pk == branch::PredictorKind::kBimodal)
                    misp_bimodal = rate;
                if (pk == branch::PredictorKind::kGshare)
                    misp_gshare = rate;
            }
        }
        row.push_back(sim::pct(misp_bimodal));
        row.push_back(sim::pct(misp_gshare));
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: where bimodal mispredicts more, the "
                "2P column degrades faster than base — the B-DET "
                "lengthening at work; the tournament recovers or "
                "beats gshare)\n");
    return 0;
}
