/**
 * @file
 * Ablation: predictor quality vs the two-pass design. Because a
 * misprediction that resolves at B-DET pays the lengthened two-pass
 * flush (Sec. 3.6), the two-pass machine is *more* sensitive to
 * predictor quality than the baseline. Sweeps bimodal / gshare /
 * tournament on both machines over the branchy benchmarks.
 *
 * Usage: bench_ablate_predictor [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<branch::PredictorKind> kinds = {
        branch::PredictorKind::kBimodal,
        branch::PredictorKind::kGshare,
        branch::PredictorKind::kTournament,
    };

    std::printf("=== Ablation: direction-predictor quality "
                "(cycles normalized to base/gshare) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (auto k : kinds)
        hdr.push_back(std::string("base-") +
                      branch::predictorKindName(k));
    for (auto k : kinds)
        hdr.push_back(std::string("2P-") +
                      branch::predictorKindName(k));
    hdr.push_back("misp%-bimodal");
    hdr.push_back("misp%-gshare");
    t.header(hdr);

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);

        // Normalize to the Table 1 design point (base + gshare).
        cpu::CoreConfig ref_cfg = sim::table1Config();
        const sim::SimOutcome ref =
            sim::simulate(w.program, sim::CpuKind::kBaseline, ref_cfg);
        const double norm = static_cast<double>(ref.run.cycles);

        std::vector<std::string> row = {name};
        double misp_bimodal = 0, misp_gshare = 0;
        for (sim::CpuKind kind :
             {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass}) {
            for (auto pk : kinds) {
                cpu::CoreConfig cfg = sim::table1Config();
                cfg.predictorKind = pk;
                const sim::SimOutcome o =
                    sim::simulate(w.program, kind, cfg);
                row.push_back(sim::fixed(
                    static_cast<double>(o.run.cycles) / norm, 3));
                if (kind == sim::CpuKind::kBaseline &&
                    o.branches.lookups > 0) {
                    const double rate =
                        static_cast<double>(o.branches.mispredicts) /
                        static_cast<double>(o.branches.lookups);
                    if (pk == branch::PredictorKind::kBimodal)
                        misp_bimodal = rate;
                    if (pk == branch::PredictorKind::kGshare)
                        misp_gshare = rate;
                }
            }
        }
        row.push_back(sim::pct(misp_bimodal));
        row.push_back(sim::pct(misp_gshare));
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: where bimodal mispredicts more, the "
                "2P column degrades faster than base — the B-DET "
                "lengthening at work; the tournament recovers or "
                "beats gshare)\n");
    return 0;
}
