/**
 * @file
 * google-benchmark microbenchmarks of the simulator's building
 * blocks: cache tag probes, ALAT traffic, store-buffer forwarding,
 * the list scheduler, and whole-machine simulation rates. These
 * guard the simulator's own performance (cycles simulated per
 * second), which bounds how large an input the experiments can use.
 */

#include <atomic>

#include <benchmark/benchmark.h>

#include "branch/gshare.hh"
#include "common/thread_pool.hh"
#include "compiler/scheduler.hh"
#include "cpu/core/model_factory.hh"
#include "cpu/functional/functional_cpu.hh"
#include "memory/alat.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "memory/store_buffer.hh"
#include "sim/batch.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    memory::Cache cache("l1", {16 * 1024, 4, 64, 2});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 4096 + 64) & 0xFFFFF;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyLoad(benchmark::State &state)
{
    memory::Hierarchy hier(memory::MemoryConfig{});
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        hier.tick(now);
        benchmark::DoNotOptimize(hier.access(
            memory::AccessKind::kLoad, memory::Initiator::kBaseline, a,
            now));
        a = (a + 8192 + 64) & 0x3FFFFF;
        ++now;
    }
}
BENCHMARK(BM_HierarchyLoad);

void
BM_AlatAllocateInvalidate(benchmark::State &state)
{
    memory::Alat alat(0);
    DynId id = 1;
    for (auto _ : state) {
        alat.allocate(id, id * 8, 8);
        alat.invalidateOverlap(id * 8 - 16, 8);
        alat.remove(id);
        ++id;
    }
}
BENCHMARK(BM_AlatAllocateInvalidate);

void
BM_StoreBufferForward(benchmark::State &state)
{
    memory::StoreBuffer sbuf(64);
    memory::SparseMemory mem;
    for (DynId i = 1; i <= 32; ++i)
        sbuf.insert(i, i * 8, 8, i);
    DynId load_id = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sbuf.read(load_id, 16 * 8, 8, mem, nullptr));
    }
}
BENCHMARK(BM_StoreBufferForward);

void
BM_GsharePredict(benchmark::State &state)
{
    branch::GsharePredictor pred(1024);
    Addr pc = 0x40000000;
    for (auto _ : state) {
        auto p = pred.predict(pc);
        pred.update(p, (pc >> 6) & 1);
        pc += 0x40;
    }
}
BENCHMARK(BM_GsharePredict);

void
BM_ScheduleMcf(benchmark::State &state)
{
    for (auto _ : state) {
        workloads::Workload w = workloads::buildWorkload("181.mcf", 5);
        benchmark::DoNotOptimize(w.program.size());
    }
}
BENCHMARK(BM_ScheduleMcf)->Unit(benchmark::kMillisecond);

/** Whole-machine simulation rate, reported as cycles/second. */
void
simRate(benchmark::State &state, cpu::CpuKind kind,
        const char *workload)
{
    workloads::Workload w = workloads::buildWorkload(workload, 5);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        auto model = cpu::makeModel(kind, w.program, cpu::CoreConfig());
        auto r = model->run(UINT64_MAX);
        cycles += r.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_SimulateFunctional(benchmark::State &state)
{
    workloads::Workload w = workloads::buildWorkload("181.mcf", 5);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        cpu::FunctionalCpu model(w.program);
        insts += model.run().instsExecuted;
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateFunctional)->Unit(benchmark::kMillisecond);

void
BM_SimulateBaseline(benchmark::State &state)
{
    simRate(state, cpu::CpuKind::kBaseline, "181.mcf");
}
BENCHMARK(BM_SimulateBaseline)->Unit(benchmark::kMillisecond);

void
BM_SimulateTwoPass(benchmark::State &state)
{
    simRate(state, cpu::CpuKind::kTwoPass, "181.mcf");
}
BENCHMARK(BM_SimulateTwoPass)->Unit(benchmark::kMillisecond);

/** Per-task overhead of the experiment engine's thread pool. */
void
BM_ThreadPoolSubmit(benchmark::State &state)
{
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        std::atomic<unsigned> n{0};
        pool.parallelFor(256, [&](std::size_t) {
            n.fetch_add(1, std::memory_order_relaxed);
        });
        benchmark::DoNotOptimize(n.load());
    }
}
BENCHMARK(BM_ThreadPoolSubmit)->Arg(1)->Arg(4);

/**
 * End-to-end batch rate: the whole suite's worth of model variety on
 * one small workload, serial vs the default (hardware) job count.
 * Argument 0 resolves per FF_JOBS/hardware concurrency.
 */
void
BM_RunBatch(benchmark::State &state)
{
    workloads::Workload w = workloads::buildWorkload("181.mcf", 5);
    std::vector<sim::SimJob> jobs;
    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
          sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead}) {
        sim::SimJob j;
        j.program = &w.program;
        j.kind = kind;
        jobs.push_back(j);
    }
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto outcomes = sim::runBatch(
            jobs, static_cast<unsigned>(state.range(0)));
        for (const auto &o : outcomes)
            cycles += o.run.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RunBatch)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
