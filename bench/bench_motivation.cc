/**
 * @file
 * Reproduces the paper's Section 1-2 motivation measurements:
 *
 *  M1: "when run-time stall cycles are discounted, the Intel
 *      reference compiler can achieve an average throughput of 2.5
 *      IPC ... run-time stall cycles ... reduc[e] throughput to 1.3
 *      IPC" — compare each benchmark's baseline IPC against the same
 *      machine with a perfect (always-L1) memory system.
 *  M2: "38% of execution cycles are consumed by data memory
 *      access-related stalls ... between 10% and 95% of these stall
 *      cycles are incurred due to accesses satisfied in the
 *      second-level cache" — the stall fraction, and the share of
 *      data-access latency cycles served by the L2.
 *
 * Usage: bench_motivation [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Motivation (Secs. 1-2): what unanticipated "
                "latency costs an in-order EPIC core ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "IPC", "IPC-nostall", "lost", "memstall%",
              "L2-share", "L3-share", "Mem-share"});

    double ipc_sum = 0.0, nostall_sum = 0.0, stall_frac_sum = 0.0;
    unsigned n = 0;

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    // The "no stall" machine: every level answers in the L1 hit
    // time, so the compiler's schedule runs unperturbed.
    cpu::CoreConfig perfect = sim::table1Config();
    perfect.mem.l2.latency = perfect.mem.l1d.latency;
    perfect.mem.l3.latency = perfect.mem.l1d.latency;
    perfect.mem.memoryLatency = perfect.mem.l1d.latency;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kBaseline, perfect},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &real = outcomes[wi * 2 + 0];
        const sim::SimOutcome &ideal = outcomes[wi * 2 + 1];

        const double stall_frac =
            static_cast<double>(
                real.cycles.of(cpu::CycleClass::kLoadStall)) /
            static_cast<double>(real.run.cycles);

        // Attribute data-access latency cycles to servicing levels.
        const auto who = static_cast<unsigned>(
            memory::Initiator::kBaseline);
        double level_cycles[memory::kNumMemLevels];
        double beyond_l1 = 0.0;
        for (unsigned l = 0; l < memory::kNumMemLevels; ++l) {
            level_cycles[l] = static_cast<double>(
                real.accesses.weightedCycles[who][l]);
            if (l != 0)
                beyond_l1 += level_cycles[l];
        }
        auto share = [&](memory::MemLevel lvl) {
            return beyond_l1 == 0.0
                       ? 0.0
                       : level_cycles[static_cast<unsigned>(lvl)] /
                             beyond_l1;
        };

        ipc_sum += real.run.ipc();
        nostall_sum += ideal.run.ipc();
        stall_frac_sum += stall_frac;
        ++n;

        t.row({name, sim::fixed(real.run.ipc(), 2),
               sim::fixed(ideal.run.ipc(), 2),
               sim::pct(1.0 - real.run.ipc() / ideal.run.ipc()),
               sim::pct(stall_frac),
               sim::pct(share(memory::MemLevel::kL2)),
               sim::pct(share(memory::MemLevel::kL3)),
               sim::pct(share(memory::MemLevel::kMemory))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("M1  mean IPC %.2f with real memory vs %.2f with "
                "perfect memory   [paper: 1.3 vs 2.5 on Itanium 2]\n",
                ipc_sum / n, nostall_sum / n);
    std::printf("M2  mean data-stall fraction %s   [paper: 38%%]\n",
                sim::pct(stall_frac_sum / n).c_str());
    std::printf("M2  L2 share of beyond-L1 access cycles spans the "
                "benchmarks   [paper: 10%%-95%% of stalls from "
                "L2-satisfied accesses]\n");
    return 0;
}
