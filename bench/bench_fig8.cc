/**
 * @file
 * Reproduces Figure 8: the effect of latency on the B-to-A committed-
 * result feedback path. Sweeps the feedback latency over
 * {1, 2, 4, 8, 16, disabled} for three benchmarks and reports the
 * growth in deferred instructions and in runtime, each normalized to
 * the 1-cycle point. The paper's findings to reproduce: the path
 * tolerates moderate latency ("especially up to four clock cycles"),
 * and for mcf removing it entirely grows deferrals by 16% and
 * runtime by 5.5%.
 *
 * Usage: bench_fig8 [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    // The three benchmarks whose A-pipe deferral is most sensitive
    // to the feedback path (the paper likewise showed three).
    const std::vector<std::string> benches = {"181.mcf", "099.go",
                                              "175.vpr"};
    const std::vector<unsigned> latencies = {1, 2, 4, 8, 16};

    std::printf("=== Figure 8: B-to-A feedback latency sweep (2P) "
                "===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "feedback", "deferred", "defer/1cyc",
              "cycles", "cyc/1cyc"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(benches, scale);
    // Columns: the latency sweep, then the disabled ("inf") point.
    std::vector<sim::SweepVariant> variants;
    for (unsigned lat : latencies) {
        cpu::CoreConfig cfg = sim::table1Config();
        cfg.feedbackEnabled = true;
        cfg.feedbackLatency = lat;
        variants.push_back({sim::CpuKind::kTwoPass, cfg});
    }
    {
        cpu::CoreConfig cfg = sim::table1Config();
        cfg.feedbackEnabled = false;
        cfg.feedbackLatency = 1;
        variants.push_back({sim::CpuKind::kTwoPass, cfg});
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        double deferred1 = 0.0, cycles1 = 0.0;
        double d_inf = 0.0, c_inf = 0.0;

        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const sim::SimOutcome &o =
                outcomes[wi * variants.size() + vi];
            const bool is_inf = vi == latencies.size();
            char label[16];
            if (is_inf)
                std::snprintf(label, sizeof(label), "inf");
            else
                std::snprintf(label, sizeof(label), "%u",
                              latencies[vi]);
            const double deferred =
                static_cast<double>(o.twopass.deferred);
            const double cycles =
                static_cast<double>(o.run.cycles);
            if (deferred1 == 0.0) {
                deferred1 = deferred;
                cycles1 = cycles;
            }
            if (is_inf) {
                d_inf = deferred;
                c_inf = cycles;
            }
            t.row({name, label, std::to_string(o.twopass.deferred),
                   sim::fixed(deferred / deferred1, 3),
                   std::to_string(o.run.cycles),
                   sim::fixed(cycles / cycles1, 3)});
        }
        if (name == "181.mcf") {
            std::printf("181.mcf without feedback: deferred +%s "
                        "[paper: +16%%], runtime +%s [paper: "
                        "+5.5%%]\n\n",
                        sim::pct(d_inf / deferred1 - 1.0).c_str(),
                        sim::pct(c_inf / cycles1 - 1.0).c_str());
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
