/**
 * @file
 * Per-instruction stall attribution across CPU models: runs one
 * bundled workload under base/2P/2Pre with the metrics layer
 * attached (one MetricsRecord per sweep configuration) and prints
 * the top-K stall-attribution tables side by side, plus the
 * occupancy summary the telemetry observer collects. This is the
 * "where did the cycles go" companion to bench_fig6: Figure 6 shows
 * the class breakdown per benchmark, this shows it per static
 * instruction — which loads own the stall cycles and what the
 * two-pass machines did about them.
 *
 * Usage: bench_profile [--jobs N] [--workload NAME] [--top K]
 *                      [--json FILE] [scale-percent]
 * (default workload 181.mcf, scale 25, top 10)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

/** One-line occupancy digest from the telemetry registry. */
std::string
occupancySummary(const metrics::Registry &reg)
{
    std::string out;
    const auto &hists = reg.histograms();
    const auto add = [&](const char *name, const char *label) {
        const auto it = hists.find(name);
        if (it == hists.end() || it->second.samples() == 0)
            return;
        if (!out.empty())
            out += "  ";
        out += label;
        out += "=";
        out += sim::fixed(it->second.mean(), 2);
        out += " (p95 ";
        out += std::to_string(it->second.quantile(0.95));
        out += ")";
    };
    add("cq_depth", "cq");
    add("inflight_loads", "loads");
    add("pending_feedback", "feedback");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs_flag = sim::parseJobsFlag(argc, argv);
    std::string workload = "181.mcf";
    std::string json_path;
    unsigned top_k = 10;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--workload") == 0 &&
                i + 1 < argc) {
                workload = argv[++i];
            } else if (std::strcmp(argv[i], "--top") == 0 &&
                       i + 1 < argc) {
                top_k = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 0));
            } else if (std::strcmp(argv[i], "--json") == 0 &&
                       i + 1 < argc) {
                json_path = argv[++i];
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
    }
    const int scale = argc > 1 ? std::atoi(argv[1]) : 25;

    std::printf("=== Per-instruction stall attribution: %s "
                "(scale %d%%) ===\n\n",
                workload.c_str(), scale);

    const auto t0 = std::chrono::steady_clock::now();

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel({{workload}}, scale);

    sim::MetricsOptions mopt;
    mopt.profile = true;
    mopt.telemetry = true;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}, mopt},
        {sim::CpuKind::kTwoPass, {}, mopt},
        {sim::CpuKind::kTwoPassRegroup, {}, mopt},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    const auto t1 = std::chrono::steady_clock::now();

    std::uint64_t total_sim_cycles = 0;
    for (const sim::SimOutcome &o : outcomes) {
        if (o.metrics == nullptr) {
            std::fprintf(stderr, "missing metrics record\n");
            return 1;
        }
        total_sim_cycles += o.run.cycles;
        const sim::MetricsRecord &rec = *o.metrics;
        std::printf("--- %s: %llu cycles, ipc %.3f ---\n",
                    sim::cpuKindName(o.kind),
                    static_cast<unsigned long long>(o.run.cycles),
                    o.run.ipc());
        std::printf("occupancy: %s\n",
                    occupancySummary(rec.telemetry).c_str());
        std::printf("%s\n", sim::renderProfileTable(rec, top_k).c_str());
    }

    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    const unsigned jobs = sim::resolveJobs(jobs_flag);
    std::printf("[engine] %zu sims on %u job%s: %.2f s wall, "
                "%.3g sim-cycles/s\n",
                outcomes.size(), jobs, jobs == 1 ? "" : "s", wall,
                static_cast<double>(total_sim_cycles) / wall);
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"profile\",\n"
            "  \"scale\": %d,\n"
            "  \"jobs\": %u,\n"
            "  \"sims\": %zu,\n"
            "  \"wallSeconds\": %.3f,\n"
            "  \"simCycles\": %llu,\n"
            "  \"simCyclesPerSec\": %.0f\n"
            "}\n",
            scale, jobs, outcomes.size(), wall,
            static_cast<unsigned long long>(total_sim_cycles),
            static_cast<double>(total_sim_cycles) / wall);
        std::fclose(f);
    }
    return 0;
}
