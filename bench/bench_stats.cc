/**
 * @file
 * Reproduces the in-text scalar statistics of Section 4:
 *
 *  S1: "an average of 32% of branch mispredictions are discovered and
 *      repaired in the A-pipe... 68% remain to be processed in the
 *      B-pipe" — plus the A/B split of *all* branch resolutions.
 *  S2: "97% of all load accesses initiated in the A-pipe while a
 *      deferred store is in the queue are free of store conflicts.
 *      Only 1.6% of all stores are deferred to the B-pipe and
 *      eventually cause a conflict flush."
 *
 * Usage: bench_stats [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Section 4 scalar statistics (2P) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "misp-A", "misp-B", "misp-A%", "resolve-A%",
              "loads>defSt", "conflicts", "conflict-free%",
              "stores", "st-conflict%"});

    std::uint64_t tot_misp_a = 0, tot_misp_b = 0;
    std::uint64_t tot_past = 0, tot_conf = 0, tot_stores = 0;

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kTwoPass, {}},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &o = outcomes[wi];
        const auto &s = o.twopass;

        const std::uint64_t misp = s.aDetMispredicts + s.bDetMispredicts;
        const std::uint64_t resolved =
            s.branchesResolvedInA + s.branchesResolvedInB;
        const std::uint64_t stores = s.storesInA + s.storesInB;
        tot_misp_a += s.aDetMispredicts;
        tot_misp_b += s.bDetMispredicts;
        tot_past += s.loadsPastDeferredStore;
        tot_conf += s.storeConflictFlushes;
        tot_stores += stores;

        t.row({name, std::to_string(s.aDetMispredicts),
               std::to_string(s.bDetMispredicts),
               misp ? sim::pct(static_cast<double>(s.aDetMispredicts) /
                               misp)
                    : "-",
               resolved
                   ? sim::pct(
                         static_cast<double>(s.branchesResolvedInA) /
                         resolved)
                   : "-",
               std::to_string(s.loadsPastDeferredStore),
               std::to_string(s.storeConflictFlushes),
               s.loadsPastDeferredStore
                   ? sim::pct(1.0 -
                              static_cast<double>(
                                  s.storeConflictFlushes) /
                                  s.loadsPastDeferredStore)
                   : "-",
               std::to_string(stores),
               stores ? sim::pct(static_cast<double>(
                                     s.storeConflictFlushes) /
                                 stores)
                      : "-"});
    }
    std::printf("%s\n", t.render().c_str());

    const std::uint64_t tot_misp = tot_misp_a + tot_misp_b;
    std::printf("S1  mispredictions repaired at A-DET: %s   [paper: "
                "32%%]\n",
                tot_misp ? sim::pct(static_cast<double>(tot_misp_a) /
                                    tot_misp)
                             .c_str()
                         : "-");
    std::printf("S1  mispredictions repaired at B-DET: %s   [paper: "
                "68%%]\n",
                tot_misp ? sim::pct(static_cast<double>(tot_misp_b) /
                                    tot_misp)
                             .c_str()
                         : "-");
    std::printf("S2  A-loads past a deferred store that are "
                "conflict-free: %s   [paper: 97%%]\n",
                tot_past ? sim::pct(1.0 - static_cast<double>(tot_conf) /
                                              tot_past)
                             .c_str()
                         : "-");
    std::printf("S2  stores causing a conflict flush: %s   [paper: "
                "1.6%%]\n",
                tot_stores ? sim::pct(static_cast<double>(tot_conf) /
                                      tot_stores)
                               .c_str()
                           : "-");
    return 0;
}
