/**
 * @file
 * Ablation of Section 3.7's partial functional-unit replication: "the
 * floating-point subpipeline would be a significant fraction of the
 * replicated area... if the A-pipe does not have a particular type of
 * unit available to it, instructions incapable of execution on the
 * A-pipe can be marked as deferred". Compares a fully-replicated
 * A-pipe against one with no FP units — measuring what that area
 * saving costs on each benchmark ("this can impact performance if
 * instructions using non-replicated functional units occur frequently
 * and are on paths leading to pipeline stalls").
 *
 * Usage: bench_ablate_partialfu [scale-percent]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Ablation: A-pipe without FP units (Sec. 3.7 "
                "partial replication) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "2P-fullrep", "2P-noFP",
              "noFP-defer%", "cost"});

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        const sim::SimOutcome base =
            sim::simulate(w.program, sim::CpuKind::kBaseline);

        const sim::SimOutcome full =
            sim::simulate(w.program, sim::CpuKind::kTwoPass);

        cpu::CoreConfig nofp = sim::table1Config();
        nofp.aPipeHasFpUnits = false;
        const sim::SimOutcome part =
            sim::simulate(w.program, sim::CpuKind::kTwoPass, nofp);

        const double b = static_cast<double>(base.run.cycles);
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(full.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(part.run.cycles) / b, 3),
               sim::pct(part.twopass.dispatched == 0
                            ? 0.0
                            : static_cast<double>(part.twopass.deferred) /
                                  part.twopass.dispatched),
               sim::pct(static_cast<double>(part.run.cycles) /
                            static_cast<double>(full.run.cycles) -
                        1.0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(finding: the FP subpipeline earns almost none of "
                "its replicated area on this suite -- even "
                "183.equake's FP work rides behind in-flight loads "
                "and defers regardless, so only 175.vpr pays "
                "measurably. Sec. 3.7's partial-replication proposal "
                "is well supported.)\n");
    return 0;
}
