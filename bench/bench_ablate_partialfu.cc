/**
 * @file
 * Ablation of Section 3.7's partial functional-unit replication: "the
 * floating-point subpipeline would be a significant fraction of the
 * replicated area... if the A-pipe does not have a particular type of
 * unit available to it, instructions incapable of execution on the
 * A-pipe can be marked as deferred". Compares a fully-replicated
 * A-pipe against one with no FP units — measuring what that area
 * saving costs on each benchmark ("this can impact performance if
 * instructions using non-replicated functional units occur frequently
 * and are on paths leading to pipeline stalls").
 *
 * Usage: bench_ablate_partialfu [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Ablation: A-pipe without FP units (Sec. 3.7 "
                "partial replication) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "2P-fullrep", "2P-noFP",
              "noFP-defer%", "cost"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    cpu::CoreConfig nofp = sim::table1Config();
    nofp.aPipeHasFpUnits = false;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPass, nofp},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &base = outcomes[wi * 3 + 0];
        const sim::SimOutcome &full = outcomes[wi * 3 + 1];
        const sim::SimOutcome &part = outcomes[wi * 3 + 2];

        const double b = static_cast<double>(base.run.cycles);
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(full.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(part.run.cycles) / b, 3),
               sim::pct(part.twopass.dispatched == 0
                            ? 0.0
                            : static_cast<double>(part.twopass.deferred) /
                                  part.twopass.dispatched),
               sim::pct(static_cast<double>(part.run.cycles) /
                            static_cast<double>(full.run.cycles) -
                        1.0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(finding: the FP subpipeline earns almost none of "
                "its replicated area on this suite -- even "
                "183.equake's FP work rides behind in-flight loads "
                "and defers regardless, so only 175.vpr pays "
                "measurably. Sec. 3.7's partial-replication proposal "
                "is well supported.)\n");
    return 0;
}
