/**
 * @file
 * Reproduces Table 2: the benchmark suite, its (synthetic) inputs,
 * and executed-instruction counts — measured on the functional
 * reference at the bench scale.
 *
 * Usage: bench_table2 [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Table 2: benchmarks and inputs ===\n\n");
    sim::TextTable t;
    t.header({"Benchmark", "Inputs", "Instructions", "Groups",
              "Branches", "Loads", "Stores", "Checksum"});
    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    std::vector<const isa::Program *> programs;
    for (const workloads::Workload &w : suite)
        programs.push_back(&w.program);
    const std::vector<sim::FunctionalOutcome> funcs =
        sim::runFunctionalBatch(programs);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const workloads::Workload &w = suite[i];
        const std::string &name = w.name;
        const sim::FunctionalOutcome &f = funcs[i];
        char insts[32];
        std::snprintf(insts, sizeof(insts), "%.2f M",
                      static_cast<double>(f.result.instsExecuted) /
                          1e6);
        t.row({name, w.input, insts,
               std::to_string(f.result.groupsExecuted),
               std::to_string(f.result.branchesExecuted),
               std::to_string(f.result.loadsExecuted),
               std::to_string(f.result.storesExecuted),
               std::to_string(f.checksum)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(scale = %d%% of the default bench-sized inputs; "
                "the paper ran 13M-1145M instruction regions of "
                "SPEC/UMN inputs)\n",
                scale);
    return 0;
}
