/**
 * @file
 * Ablation: does a conventional next-line hardware prefetcher subsume
 * two-pass pipelining? The paper positions two-pass against
 * prefetching-style techniques ("effective techniques, such as
 * prefetching..., have been proposed to deal with anticipable,
 * long-latency misses" — but the short, diffuse stalls are the
 * two-pass target). This sweep runs base and 2P with next-line
 * prefetch degrees 0/1/2/4.
 *
 * Usage: bench_ablate_prefetch [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<unsigned> degrees = {0, 1, 2, 4};

    std::printf("=== Ablation: next-line prefetching vs two-pass "
                "(cycles normalized to base/no-prefetch) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned d : degrees)
        hdr.push_back("base-pf" + std::to_string(d));
    for (unsigned d : degrees)
        hdr.push_back("2P-pf" + std::to_string(d));
    t.header(hdr);

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        std::vector<std::string> row = {name};
        double norm = 0.0;
        for (sim::CpuKind kind :
             {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass}) {
            for (unsigned d : degrees) {
                cpu::CoreConfig cfg = sim::table1Config();
                cfg.mem.prefetchDegree = d;
                const sim::SimOutcome o =
                    sim::simulate(w.program, kind, cfg);
                const double c = static_cast<double>(o.run.cycles);
                if (norm == 0.0)
                    norm = c;
                row.push_back(sim::fixed(c / norm, 3));
            }
        }
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: prefetching helps the streaming code "
                "(183.equake) in both machines but does little for "
                "random-access misses (181.mcf) or L2-hit probes "
                "(129.compress) -- two-pass keeps its advantage, and "
                "the techniques compose)\n");
    return 0;
}
