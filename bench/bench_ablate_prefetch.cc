/**
 * @file
 * Ablation: does a conventional next-line hardware prefetcher subsume
 * two-pass pipelining? The paper positions two-pass against
 * prefetching-style techniques ("effective techniques, such as
 * prefetching..., have been proposed to deal with anticipable,
 * long-latency misses" — but the short, diffuse stalls are the
 * two-pass target). This sweep runs base and 2P with next-line
 * prefetch degrees 0/1/2/4.
 *
 * Usage: bench_ablate_prefetch [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<unsigned> degrees = {0, 1, 2, 4};

    std::printf("=== Ablation: next-line prefetching vs two-pass "
                "(cycles normalized to base/no-prefetch) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned d : degrees)
        hdr.push_back("base-pf" + std::to_string(d));
    for (unsigned d : degrees)
        hdr.push_back("2P-pf" + std::to_string(d));
    t.header(hdr);

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    std::vector<sim::SweepVariant> variants;
    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass}) {
        for (unsigned d : degrees) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.mem.prefetchDegree = d;
            variants.push_back({kind, cfg});
        }
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        std::vector<std::string> row = {suite[wi].name};
        double norm = 0.0;
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const double c = static_cast<double>(
                outcomes[wi * variants.size() + vi].run.cycles);
            if (norm == 0.0)
                norm = c;
            row.push_back(sim::fixed(c / norm, 3));
        }
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: prefetching helps the streaming code "
                "(183.equake) in both machines but does little for "
                "random-access misses (181.mcf) or L2-hit probes "
                "(129.compress) -- two-pass keeps its advantage, and "
                "the techniques compose)\n");
    return 0;
}
