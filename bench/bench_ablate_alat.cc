/**
 * @file
 * Ablation A1: finite ALAT capacity. Table 1 models a perfect ALAT
 * (no capacity conflicts); here a FIFO-evicting table of decreasing
 * size shows how capacity evictions manifest as false-positive
 * conflict flushes (safe but slower).
 *
 * Usage: bench_ablate_alat [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    // 0 = perfect; then shrinking real tables.
    const std::vector<unsigned> caps = {0, 16, 8, 4, 2};

    std::printf("=== Ablation A1: ALAT capacity (2P) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "alat", "conflicts", "capacity-evict",
              "cycles", "vs-perfect"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    std::vector<sim::SweepVariant> variants;
    for (unsigned cap : caps) {
        cpu::CoreConfig cfg = sim::table1Config();
        cfg.alatCapacity = cap;
        variants.push_back({sim::CpuKind::kTwoPass, cfg});
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        double perfect_cycles = 0.0;
        for (std::size_t ci = 0; ci < caps.size(); ++ci) {
            const unsigned cap = caps[ci];
            const sim::SimOutcome &o =
                outcomes[wi * caps.size() + ci];
            const double cycles = static_cast<double>(o.run.cycles);
            if (cap == 0)
                perfect_cycles = cycles;
            t.row({name,
                   cap == 0 ? std::string("perfect")
                            : std::to_string(cap),
                   std::to_string(o.twopass.storeConflictFlushes),
                   std::to_string(o.alat.capacityEvictions),
                   std::to_string(o.run.cycles),
                   sim::fixed(cycles / perfect_cycles, 3)});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
