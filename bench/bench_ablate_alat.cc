/**
 * @file
 * Ablation A1: finite ALAT capacity. Table 1 models a perfect ALAT
 * (no capacity conflicts); here a FIFO-evicting table of decreasing
 * size shows how capacity evictions manifest as false-positive
 * conflict flushes (safe but slower).
 *
 * Usage: bench_ablate_alat [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    // 0 = perfect; then shrinking real tables.
    const std::vector<unsigned> caps = {0, 16, 8, 4, 2};

    std::printf("=== Ablation A1: ALAT capacity (2P) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "alat", "conflicts", "capacity-evict",
              "cycles", "vs-perfect"});

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        double perfect_cycles = 0.0;
        for (unsigned cap : caps) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.alatCapacity = cap;
            const sim::SimOutcome o =
                sim::simulate(w.program, sim::CpuKind::kTwoPass, cfg);
            const double cycles = static_cast<double>(o.run.cycles);
            if (cap == 0)
                perfect_cycles = cycles;
            t.row({name,
                   cap == 0 ? std::string("perfect")
                            : std::to_string(cap),
                   std::to_string(o.twopass.storeConflictFlushes),
                   std::to_string(o.alat.capacityEvictions),
                   std::to_string(o.run.cycles),
                   sim::fixed(cycles / perfect_cycles, 3)});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
