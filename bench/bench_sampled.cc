/**
 * @file
 * Measures sampled simulation against ground truth: the full
 * ten-benchmark suite under base/2P/2Pre runs twice — once with full
 * detailed simulation and once sampled (functional checkpoints +
 * parallel detailed interval replay, see sim/sampled.hh) — and the
 * table reports per-run IPC, the sampled estimate with its 95%
 * confidence interval, and the relative error, plus the aggregate
 * wall-clock speedup of the sampled sweep over the full one.
 *
 * Usage: bench_sampled [--jobs N] [--json FILE]
 *                      [--sample INTERVAL[:DETAIL[:WARMUP]]]
 *                      [--max-err PCT] [--min-speedup X]
 *                      [scale-percent]
 * (default scale 100 and sampling config 32000:4000; --max-err makes
 * the run fail if any workload x model relative IPC error exceeds PCT
 * — the sampled_accuracy CI gate; --min-speedup likewise gates the
 * aggregate wall-clock speedup — the bench-smoke throughput gate;
 * --json appends a machine-readable record for BENCH_fig6.json.)
 *
 * Timing note: both sweeps run through the same engine at the same
 * job count, so the reported speedup isolates the sampling estimator.
 * Run without FF_CACHE_DIR — cache hits would time the cache, not
 * the simulator.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/sampled.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

sim::SampledOptions
parseSampleSpec(const char *spec)
{
    sim::SampledOptions o;
    char *end = nullptr;
    o.intervalCycles = std::strtoull(spec, &end, 0);
    if (*end == ':')
        o.detailCycles = std::strtoull(end + 1, &end, 0);
    if (*end == ':')
        o.warmupCycles = std::strtoull(end + 1, &end, 0);
    if (o.intervalCycles == 0 || *end != '\0') {
        std::fprintf(stderr,
                     "bad --sample value '%s' (expected "
                     "INTERVAL[:DETAIL[:WARMUP]])\n",
                     spec);
        std::exit(1);
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs_flag = sim::parseJobsFlag(argc, argv);
    std::string json_path;
    sim::SampledOptions sopt;
    sopt.intervalCycles = 32000;
    sopt.detailCycles = 4000;
    double max_err_pct = 0.0;    // 0 = no accuracy gate
    double min_speedup = 0.0;    // 0 = no throughput gate
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                json_path = argv[++i];
            else if (std::strcmp(argv[i], "--sample") == 0 &&
                     i + 1 < argc)
                sopt = parseSampleSpec(argv[++i]);
            else if (std::strcmp(argv[i], "--max-err") == 0 &&
                     i + 1 < argc)
                max_err_pct = std::atof(argv[++i]);
            else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                     i + 1 < argc)
                min_speedup = std::atof(argv[++i]);
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const sim::SampledOptions norm = sopt.normalized();

    std::printf("=== Sampled simulation vs ground truth "
                "(base / 2P / 2Pre) ===\n\n");
    std::printf("sampling: interval=%llu detail=%llu warmup=%llu "
                "maxIntervals=%llu\n\n",
                static_cast<unsigned long long>(norm.intervalCycles),
                static_cast<unsigned long long>(norm.detailCycles),
                static_cast<unsigned long long>(norm.warmupCycles),
                static_cast<unsigned long long>(norm.maxIntervals));
    if (sim::resultCacheEnabled())
        std::printf("WARNING: result cache enabled — wall times "
                    "measure the cache, not the simulator\n\n");

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);

    const std::vector<sim::SweepVariant> full_variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPassRegroup, {}},
    };
    std::vector<sim::SweepVariant> sampled_variants = full_variants;
    for (sim::SweepVariant &v : sampled_variants)
        v.sampled = sopt;

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sim::SimOutcome> full =
        sim::runSweep(suite, full_variants);
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<sim::SimOutcome> sampled =
        sim::runSweep(suite, sampled_variants);
    const auto t2 = std::chrono::steady_clock::now();

    static const char *const kModelNames[] = {"base", "2P", "2Pre"};
    sim::TextTable t;
    t.header({"benchmark", "cfg", "full ipc", "sampled ipc", "ci95",
              "err", "windows"});

    double max_err = 0.0, sum_err = 0.0;
    std::string worst;
    unsigned rows = 0, covered = 0;
    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        for (std::size_t v = 0; v < full_variants.size(); ++v) {
            const sim::SimOutcome &f = full[wi * 3 + v];
            const sim::SimOutcome &s = sampled[wi * 3 + v];
            const sim::SampledEstimate &e = *s.sampled;
            const double full_ipc = f.run.ipc();
            const double err =
                std::fabs(e.ipcMean - full_ipc) / full_ipc;
            sum_err += err;
            ++rows;
            if (err > max_err) {
                max_err = err;
                worst = suite[wi].name + std::string("/") +
                        kModelNames[v];
            }
            if (std::fabs(e.ipcMean - full_ipc) <= e.ipcCi95)
                ++covered;
            t.row({suite[wi].name, kModelNames[v],
                   sim::fixed(full_ipc, 4), sim::fixed(e.ipcMean, 4),
                   "+/-" + sim::fixed(e.ipcCi95, 4),
                   sim::pct(err),
                   std::to_string(e.intervalsMeasured) + "/" +
                       std::to_string(e.intervalsTotal)});
        }
    }
    std::printf("%s\n", t.render().c_str());

    const double full_wall =
        std::chrono::duration<double>(t1 - t0).count();
    const double sampled_wall =
        std::chrono::duration<double>(t2 - t1).count();
    const double speedup = full_wall / std::max(sampled_wall, 1e-9);
    const double mean_err = sum_err / rows;
    const unsigned jobs = sim::resolveJobs(jobs_flag);

    std::printf("error: max %s (%s), mean %s over %u runs; "
                "CI95 covers truth in %u/%u\n",
                sim::pct(max_err).c_str(), worst.c_str(),
                sim::pct(mean_err).c_str(), rows, covered, rows);
    std::printf("[engine] %u job%s: full %.2f s, sampled %.2f s — "
                "%.2fx speedup\n",
                jobs, jobs == 1 ? "" : "s", full_wall, sampled_wall,
                speedup);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"sampled\",\n"
            "  \"scale\": %d,\n"
            "  \"jobs\": %u,\n"
            "  \"sims\": %zu,\n"
            "  \"sample\": \"%llu:%llu:%llu\",\n"
            "  \"fullWallSeconds\": %.3f,\n"
            "  \"sampledWallSeconds\": %.3f,\n"
            "  \"sampledSpeedup\": %.2f,\n"
            "  \"maxRelErrPct\": %.3f,\n"
            "  \"meanRelErrPct\": %.3f\n"
            "}\n",
            scale, jobs, full.size(),
            static_cast<unsigned long long>(norm.intervalCycles),
            static_cast<unsigned long long>(norm.detailCycles),
            static_cast<unsigned long long>(norm.warmupCycles),
            full_wall, sampled_wall, speedup, 100.0 * max_err,
            100.0 * mean_err);
        std::fclose(f);
    }

    bool fail = false;
    if (max_err_pct > 0.0 && 100.0 * max_err > max_err_pct) {
        std::fprintf(stderr,
                     "bench_sampled: FAIL — max relative IPC error "
                     "%.3f%% (%s) exceeds the %.2f%% gate\n",
                     100.0 * max_err, worst.c_str(), max_err_pct);
        fail = true;
    }
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "bench_sampled: FAIL — sampled speedup %.2fx "
                     "below the %.2fx gate\n",
                     speedup, min_speedup);
        fail = true;
    }
    return fail ? 1 : 0;
}
