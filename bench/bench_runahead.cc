/**
 * @file
 * Ablation A3 — the Section 2 comparison: checkpoint-based run-ahead
 * (Dundas/Mutlu-style) versus two-pass pipelining. Run-ahead also
 * warms the caches during stalls but discards its work and refetches
 * on exit; two-pass retains pre-executed results. Expected shape:
 * run-ahead sits between the baseline and 2P on miss-dominated
 * benchmarks.
 *
 * Usage: bench_runahead [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== A3: run-ahead vs two-pass (cycles normalized to "
                "base) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "runahead", "2P", "2Pre",
              "ra-episodes", "ra-cycles%"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kRunahead, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPassRegroup, {}},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &base = outcomes[wi * 4 + 0];
        const sim::SimOutcome &ra = outcomes[wi * 4 + 1];
        const sim::SimOutcome &twop = outcomes[wi * 4 + 2];
        const sim::SimOutcome &twopre = outcomes[wi * 4 + 3];

        const double b = static_cast<double>(base.run.cycles);
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(ra.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(twop.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(twopre.run.cycles) / b,
                          3),
               std::to_string(ra.runahead.episodes),
               sim::pct(static_cast<double>(ra.runahead.runaheadCycles) /
                        static_cast<double>(ra.run.cycles))});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
