/**
 * @file
 * Ablation A3 — the Section 2 comparison: checkpoint-based run-ahead
 * (Dundas/Mutlu-style) versus two-pass pipelining. Run-ahead also
 * warms the caches during stalls but discards its work and refetches
 * on exit; two-pass retains pre-executed results. Expected shape:
 * run-ahead sits between the baseline and 2P on miss-dominated
 * benchmarks.
 *
 * Usage: bench_runahead [scale-percent]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== A3: run-ahead vs two-pass (cycles normalized to "
                "base) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "runahead", "2P", "2Pre",
              "ra-episodes", "ra-cycles%"});

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        const sim::SimOutcome base =
            sim::simulate(w.program, sim::CpuKind::kBaseline);
        const sim::SimOutcome ra =
            sim::simulate(w.program, sim::CpuKind::kRunahead);
        const sim::SimOutcome twop =
            sim::simulate(w.program, sim::CpuKind::kTwoPass);
        const sim::SimOutcome twopre =
            sim::simulate(w.program, sim::CpuKind::kTwoPassRegroup);

        const double b = static_cast<double>(base.run.cycles);
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(ra.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(twop.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(twopre.run.cycles) / b,
                          3),
               std::to_string(ra.runahead.episodes),
               sim::pct(static_cast<double>(ra.runahead.runaheadCycles) /
                        static_cast<double>(ra.run.cycles))});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
