/**
 * @file
 * bench_tick: raw per-cycle hot-path throughput of every timed CPU
 * model, in simulated cycles per wall-clock second. The workload is a
 * deliberately L1-resident kernel (a 4KB table walked with computable
 * indices plus ALU work), so after the first touches the memory
 * system contributes nothing and the measurement isolates the cost
 * of the machine-state tick itself: scoreboard scans, coupling-queue
 * shuffling, issue checks, observers.
 *
 * This is the gate behind the structure-of-arrays layout of
 * cpu::MachineState — CI runs it through tools/bench_smoke.sh with a
 * cycles/sec floor, and appends the record to BENCH_fig6.json so the
 * throughput trajectory accumulates alongside the sweep-engine one.
 *
 * Usage: bench_tick [--json FILE] [scale-percent]
 * (default scale 100 ~ 60k iterations per model; the smoke tests
 * pass 5)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compiler/scheduler.hh"
#include "isa/builder.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/kernels.hh"

using namespace ff;
using workloads::P;
using workloads::R;

namespace
{

/**
 * The tick kernel: every load hits a 4KB table (well inside the 16KB
 * L1D), indices are computable single-cycle ALU chains (so the
 * A-pipe pre-executes them and the coupling queue stays busy), and
 * one conditional branch per iteration keeps the front end honest.
 */
isa::Program
buildTickKernel(int scale)
{
    constexpr Addr kTableBase = 0x0A00'0000;
    constexpr std::int64_t kEntries = 512; // 8 B each = 4 KB
    const std::int64_t iters = workloads::scaledIters(60000, scale);

    isa::ProgramBuilder b("tick");
    b.movi(R(1), static_cast<std::int64_t>(kTableBase));
    b.movi(R(3), 0x7469636bLL); // "tick"
    b.movi(R(5), iters);
    b.movi(R(31), 0);

    b.label("loop");
    workloads::rngStep(b, R(3));
    workloads::randomIndex(b, R(4), R(7), R(3), kEntries - 1, 27, 17);
    b.shli(R(4), R(4), 3);
    b.add(R(9), R(1), R(4));
    b.ld8(R(10), R(9), 0);
    b.add(R(31), R(31), R(10));
    // A short ALU tail so issue groups carry a realistic mix.
    b.xor_(R(11), R(31), R(10));
    b.shri(R(12), R(11), 3);
    b.add(R(31), R(31), R(12));
    workloads::loopBack(b, R(5), P(1), P(2), "loop");
    workloads::storeChecksumAndHalt(b, R(31), R(6));

    isa::Program prog = b.finalize();
    for (std::int64_t e = 0; e < kEntries; ++e) {
        prog.poke64(kTableBase + static_cast<Addr>(e) * 8,
                    static_cast<std::uint64_t>(e) * 0x9E37ULL + 1);
    }
    return compiler::schedule(prog);
}

} // namespace

int
main(int argc, char **argv)
{
    // Accepted for CLI uniformity with the sweep benches (the CI
    // quick-bench loop passes it); each model runs serially here.
    (void)sim::parseJobsFlag(argc, argv);
    std::string json_path;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                json_path = argv[++i];
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== bench_tick: hot-path throughput on an "
                "L1-resident kernel (scale %d%%) ===\n\n", scale);

    const isa::Program prog = buildTickKernel(scale);
    const cpu::CoreConfig cfg = sim::table1Config();

    const sim::CpuKind kinds[] = {
        sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
        sim::CpuKind::kTwoPassRegroup, sim::CpuKind::kRunahead};

    sim::TextTable t;
    t.header({"model", "cycles", "insts", "ipc", "wall-s",
              "sim-cycles/s", "traced/s"});

    std::uint64_t total_cycles = 0;
    std::uint64_t checksum = 0;
    double total_wall = 0.0;
    std::string json_rows;
    for (const sim::CpuKind kind : kinds) {
        // One throwaway run per model warms the host caches and the
        // verification-wall memo, so the timed run measures only the
        // simulation loop.
        (void)sim::simulate(prog, kind, cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const sim::SimOutcome o = sim::simulate(prog, kind, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall =
            std::chrono::duration<double>(t1 - t0).count();
        const double rate =
            static_cast<double>(o.run.cycles) / wall;

        if (checksum == 0)
            checksum = o.checksum;
        if (o.checksum != checksum) {
            std::fprintf(stderr,
                         "bench_tick: checksum mismatch on %s\n",
                         sim::cpuKindName(kind));
            return 1;
        }

        // A second timed pass with the pipeline tracer attached
        // prices the observer overhead; the floor-gated aggregate
        // below stays on the detached numbers.
        sim::MetricsOptions traced_opt;
        traced_opt.pipeview = true;
        const auto t2 = std::chrono::steady_clock::now();
        const sim::SimOutcome ot = sim::simulate(
            prog, kind, cfg, sim::kDefaultMaxCycles, traced_opt);
        const auto t3 = std::chrono::steady_clock::now();
        const double traced_wall =
            std::chrono::duration<double>(t3 - t2).count();
        const double traced_rate =
            static_cast<double>(ot.run.cycles) / traced_wall;
        if (ot.checksum != checksum) {
            std::fprintf(stderr,
                         "bench_tick: traced checksum mismatch on "
                         "%s\n",
                         sim::cpuKindName(kind));
            return 1;
        }

        t.row({sim::cpuKindName(kind),
               std::to_string(o.run.cycles),
               std::to_string(o.run.instsRetired),
               sim::fixed(o.run.ipc(), 3), sim::fixed(wall, 3),
               sim::fixed(rate / 1e6, 2) + "M",
               sim::fixed(traced_rate / 1e6, 2) + "M"});
        total_cycles += o.run.cycles;
        total_wall += wall;

        char row[160];
        std::snprintf(row, sizeof(row),
                      "%s    {\"model\": \"%s\", \"simCyclesPerSec\": "
                      "%.0f, \"simCyclesPerSecTraced\": %.0f}",
                      json_rows.empty() ? "" : ",\n",
                      sim::cpuKindName(kind), rate, traced_rate);
        json_rows += row;
    }

    const double agg =
        static_cast<double>(total_cycles) / total_wall;
    std::printf("%s\n", t.render().c_str());
    std::printf("[engine] %llu sim-cycles over %.2f s wall: "
                "%.3g sim-cycles/s aggregate\n",
                static_cast<unsigned long long>(total_cycles),
                total_wall, agg);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"tick\",\n"
                     "  \"scale\": %d,\n"
                     "  \"simCycles\": %llu,\n"
                     "  \"wallSeconds\": %.3f,\n"
                     "  \"simCyclesPerSec\": %.0f,\n"
                     "  \"perModel\": [\n%s\n  ]\n"
                     "}\n",
                     scale,
                     static_cast<unsigned long long>(total_cycles),
                     total_wall, agg, json_rows.c_str());
        std::fclose(f);
    }
    return 0;
}
