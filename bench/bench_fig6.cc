/**
 * @file
 * Reproduces Figure 6: normalized execution cycles with the six-way
 * stall breakdown for the baseline (base), two-pass (2P), and
 * two-pass with instruction regrouping (2Pre) machines, across the
 * ten-benchmark suite. Also prints the in-text headline statistics
 * (S3: mcf's memory-stall and total-cycle reductions; S4: the average
 * 2Pre speedup over 2P).
 *
 * Usage: bench_fig6 [scale-percent] [alt]
 * (default scale 100; pass "alt" to run the alternate input set,
 * validating that the reproduced shape is not an artifact of one
 * particular seed)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "compiler/scheduler.hh"

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const workloads::InputSet input =
        (argc > 2 && std::string(argv[2]) == "alt")
            ? workloads::InputSet::kAlternate
            : workloads::InputSet::kDefault;

    std::printf("=== Figure 6: normalized execution cycles "
                "(baseline / 2P / 2Pre) [%s inputs] ===\n\n",
                workloads::inputSetName(input));
    std::printf("%s\n",
                sim::describeConfig(sim::table1Config()).c_str());

    sim::TextTable t;
    t.header({"benchmark", "cfg", "unstalled", "load", "nonload",
              "resource", "frontend", "apipe", "total", "speedup"});

    double geo_2p = 0.0, geo_2pre = 0.0, geo_2pre_over_2p = 0.0;
    unsigned n = 0;
    double mcf_mem_reduction = 0.0, mcf_cycle_reduction = 0.0;

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w = workloads::buildWorkload(
            name, scale, compiler::SchedulerConfig(), input);

        const sim::SimOutcome base =
            sim::simulate(w.program, sim::CpuKind::kBaseline);
        const sim::SimOutcome twop =
            sim::simulate(w.program, sim::CpuKind::kTwoPass);
        const sim::SimOutcome twopre =
            sim::simulate(w.program, sim::CpuKind::kTwoPassRegroup);

        const double base_cycles = static_cast<double>(base.run.cycles);
        struct RowSpec
        {
            const char *cfg;
            const sim::SimOutcome *o;
        };
        for (const RowSpec &r : {RowSpec{"base", &base},
                                 RowSpec{"2P", &twop},
                                 RowSpec{"2Pre", &twopre}}) {
            std::vector<std::string> cells{name, r.cfg};
            auto breakdown =
                sim::fig6Cells(r.o->cycles, base.run.cycles);
            cells.insert(cells.end(), breakdown.begin(),
                         breakdown.end());
            cells.push_back(sim::fixed(
                base_cycles / static_cast<double>(r.o->run.cycles), 3));
            t.row(cells);
        }

        geo_2p +=
            std::log(base_cycles / static_cast<double>(twop.run.cycles));
        geo_2pre += std::log(base_cycles /
                             static_cast<double>(twopre.run.cycles));
        geo_2pre_over_2p +=
            std::log(static_cast<double>(twop.run.cycles) /
                     static_cast<double>(twopre.run.cycles));
        ++n;

        if (name == "181.mcf") {
            const auto base_mem =
                base.cycles.of(cpu::CycleClass::kLoadStall);
            const auto twop_mem =
                twop.cycles.of(cpu::CycleClass::kLoadStall);
            mcf_mem_reduction = 1.0 - static_cast<double>(twop_mem) /
                                          static_cast<double>(base_mem);
            mcf_cycle_reduction =
                1.0 -
                static_cast<double>(twop.run.cycles) / base_cycles;
        }
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("S3  181.mcf memory-stall-cycle reduction (2P vs "
                "base): %s   [paper: 62%%]\n",
                sim::pct(mcf_mem_reduction).c_str());
    std::printf("S3  181.mcf total-cycle reduction (2P vs base): %s   "
                "[paper: 23%%]\n",
                sim::pct(mcf_cycle_reduction).c_str());
    std::printf("S4  geomean speedup 2P   over base: %s\n",
                sim::fixed(std::exp(geo_2p / n), 3).c_str());
    std::printf("S4  geomean speedup 2Pre over base: %s\n",
                sim::fixed(std::exp(geo_2pre / n), 3).c_str());
    std::printf("S4  geomean speedup 2Pre over 2P:   %s   [paper: "
                "1.08]\n",
                sim::fixed(std::exp(geo_2pre_over_2p / n), 3).c_str());
    return 0;
}
