/**
 * @file
 * Reproduces Figure 6: normalized execution cycles with the six-way
 * stall breakdown for the baseline (base), two-pass (2P), and
 * two-pass with instruction regrouping (2Pre) machines, across the
 * ten-benchmark suite. Also prints the in-text headline statistics
 * (S3: mcf's memory-stall and total-cycle reductions; S4: the average
 * 2Pre speedup over 2P).
 *
 * Usage: bench_fig6 [--jobs N] [--json FILE] [--warmup N]
 *                   [scale-percent] [alt]
 * (default scale 100; pass "alt" to run the alternate input set,
 * validating that the reproduced shape is not an artifact of one
 * particular seed; --json appends a machine-readable throughput
 * record for the CI bench-smoke step; --warmup N shares an N-cycle
 * warm-up prefix across equal-config sweep cells via snapshot
 * forking — results stay bit-identical. Set FF_CACHE_DIR to reuse
 * outcomes across invocations through the result cache.)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/scheduler.hh"

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const unsigned jobs_flag = sim::parseJobsFlag(argc, argv);
    std::string json_path;
    std::uint64_t warmup_cycles = 0;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                json_path = argv[++i];
            else if (std::strcmp(argv[i], "--warmup") == 0 &&
                     i + 1 < argc)
                warmup_cycles = std::strtoull(argv[++i], nullptr, 0);
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const workloads::InputSet input =
        (argc > 2 && std::string(argv[2]) == "alt")
            ? workloads::InputSet::kAlternate
            : workloads::InputSet::kDefault;

    std::printf("=== Figure 6: normalized execution cycles "
                "(baseline / 2P / 2Pre) [%s inputs] ===\n\n",
                workloads::inputSetName(input));
    std::printf("%s\n",
                sim::describeConfig(sim::table1Config()).c_str());

    const auto t0 = std::chrono::steady_clock::now();

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale,
                                    input);
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPassRegroup, {}},
    };
    sim::resetResultCacheStats();
    sim::SweepOptions sweep_opts;
    sweep_opts.warmupCycles = warmup_cycles;
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants, sweep_opts);

    const auto t1 = std::chrono::steady_clock::now();
    const sim::ResultCacheStats cache = sim::resultCacheStats();

    sim::TextTable t;
    t.header({"benchmark", "cfg", "unstalled", "load", "nonload",
              "resource", "frontend", "apipe", "total", "speedup"});

    double geo_2p = 0.0, geo_2pre = 0.0, geo_2pre_over_2p = 0.0;
    unsigned n = 0;
    double mcf_mem_reduction = 0.0, mcf_cycle_reduction = 0.0;
    std::uint64_t total_sim_cycles = 0;

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &base = outcomes[wi * 3 + 0];
        const sim::SimOutcome &twop = outcomes[wi * 3 + 1];
        const sim::SimOutcome &twopre = outcomes[wi * 3 + 2];

        const double base_cycles = static_cast<double>(base.run.cycles);
        struct RowSpec
        {
            const char *cfg;
            const sim::SimOutcome *o;
        };
        for (const RowSpec &r : {RowSpec{"base", &base},
                                 RowSpec{"2P", &twop},
                                 RowSpec{"2Pre", &twopre}}) {
            std::vector<std::string> cells{name, r.cfg};
            auto breakdown =
                sim::fig6Cells(r.o->cycles, base.run.cycles);
            cells.insert(cells.end(), breakdown.begin(),
                         breakdown.end());
            cells.push_back(sim::fixed(
                base_cycles / static_cast<double>(r.o->run.cycles), 3));
            t.row(cells);
            total_sim_cycles += r.o->run.cycles;
        }

        geo_2p +=
            std::log(base_cycles / static_cast<double>(twop.run.cycles));
        geo_2pre += std::log(base_cycles /
                             static_cast<double>(twopre.run.cycles));
        geo_2pre_over_2p +=
            std::log(static_cast<double>(twop.run.cycles) /
                     static_cast<double>(twopre.run.cycles));
        ++n;

        if (name == "181.mcf") {
            const auto base_mem =
                base.cycles.of(cpu::CycleClass::kLoadStall);
            const auto twop_mem =
                twop.cycles.of(cpu::CycleClass::kLoadStall);
            mcf_mem_reduction = 1.0 - static_cast<double>(twop_mem) /
                                          static_cast<double>(base_mem);
            mcf_cycle_reduction =
                1.0 -
                static_cast<double>(twop.run.cycles) / base_cycles;
        }
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("S3  181.mcf memory-stall-cycle reduction (2P vs "
                "base): %s   [paper: 62%%]\n",
                sim::pct(mcf_mem_reduction).c_str());
    std::printf("S3  181.mcf total-cycle reduction (2P vs base): %s   "
                "[paper: 23%%]\n",
                sim::pct(mcf_cycle_reduction).c_str());
    std::printf("S4  geomean speedup 2P   over base: %s\n",
                sim::fixed(std::exp(geo_2p / n), 3).c_str());
    std::printf("S4  geomean speedup 2Pre over base: %s\n",
                sim::fixed(std::exp(geo_2pre / n), 3).c_str());
    std::printf("S4  geomean speedup 2Pre over 2P:   %s   [paper: "
                "1.08]\n",
                sim::fixed(std::exp(geo_2pre_over_2p / n), 3).c_str());

    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    const unsigned jobs = sim::resolveJobs(jobs_flag);
    std::printf("\n[engine] %zu sims on %u job%s: %.2f s wall, "
                "%.3g sim-cycles/s",
                outcomes.size(), jobs, jobs == 1 ? "" : "s", wall,
                static_cast<double>(total_sim_cycles) / wall);
    if (sim::resultCacheEnabled()) {
        std::printf(", cache %llu hit%s / %llu miss%s",
                    static_cast<unsigned long long>(cache.hits),
                    cache.hits == 1 ? "" : "s",
                    static_cast<unsigned long long>(cache.misses),
                    cache.misses == 1 ? "" : "es");
    }
    std::printf("\n");
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"fig6\",\n"
            "  \"scale\": %d,\n"
            "  \"jobs\": %u,\n"
            "  \"sims\": %zu,\n"
            "  \"wallSeconds\": %.3f,\n"
            "  \"simCycles\": %llu,\n"
            "  \"simCyclesPerSec\": %.0f,\n"
            "  \"warmupCycles\": %llu,\n"
            "  \"cacheHits\": %llu,\n"
            "  \"cacheMisses\": %llu\n"
            "}\n",
            scale, jobs, outcomes.size(), wall,
            static_cast<unsigned long long>(total_sim_cycles),
            static_cast<double>(total_sim_cycles) / wall,
            static_cast<unsigned long long>(warmup_cycles),
            static_cast<unsigned long long>(cache.hits),
            static_cast<unsigned long long>(cache.misses));
        std::fclose(f);
    }
    return 0;
}
