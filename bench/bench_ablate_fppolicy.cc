/**
 * @file
 * Ablation A2 — the fix Section 4 suggests for vpr: "It may
 * therefore be advisable to allow the A-pipe to stall on anticipable
 * latencies, since these latencies are effectively modeled by the
 * compiler." Compares the default greedy A-pipe against one that
 * stalls for in-flight multi-cycle non-load producers instead of
 * deferring their consumers.
 *
 * Usage: bench_ablate_fppolicy [scale-percent]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Ablation A2: A-pipe stalls on anticipable "
                "latencies (2P) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "2P-defer", "2P-stall", "deferred%",
              "deferred%-stall", "best"});

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        const sim::SimOutcome base =
            sim::simulate(w.program, sim::CpuKind::kBaseline);

        cpu::CoreConfig defer_cfg = sim::table1Config();
        const sim::SimOutcome defer =
            sim::simulate(w.program, sim::CpuKind::kTwoPass, defer_cfg);

        cpu::CoreConfig stall_cfg = sim::table1Config();
        stall_cfg.aPipeStallsOnAnticipable = true;
        const sim::SimOutcome stall =
            sim::simulate(w.program, sim::CpuKind::kTwoPass, stall_cfg);

        const double b = static_cast<double>(base.run.cycles);
        auto frac = [](const cpu::TwoPassStats &s) {
            return s.dispatched == 0
                       ? 0.0
                       : static_cast<double>(s.deferred) / s.dispatched;
        };
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(defer.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(stall.run.cycles) / b, 3),
               sim::pct(frac(defer.twopass)),
               sim::pct(frac(stall.twopass)),
               stall.run.cycles < defer.run.cycles ? "stall" : "defer"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: 'stall' wins on 175.vpr, whose "
                "FP chains otherwise defer wholesale; 'defer' wins "
                "where greed exposes load overlap)\n");
    return 0;
}
