/**
 * @file
 * Ablation A2 — the fix Section 4 suggests for vpr: "It may
 * therefore be advisable to allow the A-pipe to stall on anticipable
 * latencies, since these latencies are effectively modeled by the
 * compiler." Compares the default greedy A-pipe against one that
 * stalls for in-flight multi-cycle non-load producers instead of
 * deferring their consumers.
 *
 * Usage: bench_ablate_fppolicy [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;

    std::printf("=== Ablation A2: A-pipe stalls on anticipable "
                "latencies (2P) ===\n\n");
    sim::TextTable t;
    t.header({"benchmark", "base", "2P-defer", "2P-stall", "deferred%",
              "deferred%-stall", "best"});

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    cpu::CoreConfig stall_cfg = sim::table1Config();
    stall_cfg.aPipeStallsOnAnticipable = true;
    const std::vector<sim::SweepVariant> variants = {
        {sim::CpuKind::kBaseline, {}},
        {sim::CpuKind::kTwoPass, {}},
        {sim::CpuKind::kTwoPass, stall_cfg},
    };
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        const std::string &name = suite[wi].name;
        const sim::SimOutcome &base = outcomes[wi * 3 + 0];
        const sim::SimOutcome &defer = outcomes[wi * 3 + 1];
        const sim::SimOutcome &stall = outcomes[wi * 3 + 2];

        const double b = static_cast<double>(base.run.cycles);
        auto frac = [](const cpu::TwoPassStats &s) {
            return s.dispatched == 0
                       ? 0.0
                       : static_cast<double>(s.deferred) / s.dispatched;
        };
        t.row({name, "1.000",
               sim::fixed(static_cast<double>(defer.run.cycles) / b, 3),
               sim::fixed(static_cast<double>(stall.run.cycles) / b, 3),
               sim::pct(frac(defer.twopass)),
               sim::pct(frac(stall.twopass)),
               stall.run.cycles < defer.run.cycles ? "stall" : "defer"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(expected: 'stall' wins on 175.vpr, whose "
                "FP chains otherwise defer wholesale; 'defer' wins "
                "where greed exposes load overlap)\n");
    return 0;
}
