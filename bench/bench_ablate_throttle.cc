/**
 * @file
 * Ablation of the A-pipe issue-moderation mechanism the paper leaves
 * as future work (Sec. 3.5: "If very little actual execution is
 * occurring in the A-pipe... flushing instructions out of the queue
 * and restarting the A-pipe issue after the B-pipe has cleared some
 * of the backlog may be preferable"; Sec. 6: "the study of mechanisms
 * to moderate the issue of the A-pipe"). Our variant pauses A-pipe
 * dispatch when the recent deferral rate crosses a threshold while
 * the queue is backed up, resuming once it drains.
 *
 * Usage: bench_ablate_throttle [--jobs N] [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    sim::parseJobsFlag(argc, argv);
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<unsigned> thresholds = {0, 90, 75, 50};

    std::printf("=== Ablation: A-pipe issue moderation (deferral-rate "
                "throttle) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned th : thresholds) {
        hdr.push_back(th == 0 ? std::string("off")
                              : ("thr" + std::to_string(th) + "%"));
    }
    hdr.push_back("pause-cyc@50%");
    t.header(hdr);

    const std::vector<workloads::Workload> suite =
        sim::buildWorkloadsParallel(workloads::workloadNames(), scale);
    std::vector<sim::SweepVariant> variants;
    for (unsigned th : thresholds) {
        cpu::CoreConfig cfg = sim::table1Config();
        cfg.aPipeThrottlePercent = th;
        variants.push_back({sim::CpuKind::kTwoPass, cfg});
    }
    const std::vector<sim::SimOutcome> outcomes =
        sim::runSweep(suite, variants);

    for (std::size_t wi = 0; wi < suite.size(); ++wi) {
        std::vector<std::string> row = {suite[wi].name};
        double off_cycles = 0.0;
        std::uint64_t pauses_at_50 = 0;
        for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
            const unsigned th = thresholds[ti];
            const sim::SimOutcome &o =
                outcomes[wi * thresholds.size() + ti];
            const double c = static_cast<double>(o.run.cycles);
            if (th == 0)
                off_cycles = c;
            if (th == 50)
                pauses_at_50 = o.twopass.aStallThrottled;
            row.push_back(sim::fixed(c / off_cycles, 3));
        }
        row.push_back(std::to_string(pauses_at_50));
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(finding: a deferral-RATE trigger is the wrong "
                "signal -- benchmarks that defer heavily, like "
                "183.equake, still profit from the loads the A-pipe "
                "pre-executes between deferrals, so pausing costs "
                "cycles. Moderation needs to key on pre-executed-load "
                "yield, not deferral counts.)\n");
    return 0;
}
