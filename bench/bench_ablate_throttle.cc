/**
 * @file
 * Ablation of the A-pipe issue-moderation mechanism the paper leaves
 * as future work (Sec. 3.5: "If very little actual execution is
 * occurring in the A-pipe... flushing instructions out of the queue
 * and restarting the A-pipe issue after the B-pipe has cleared some
 * of the backlog may be preferable"; Sec. 6: "the study of mechanisms
 * to moderate the issue of the A-pipe"). Our variant pauses A-pipe
 * dispatch when the recent deferral rate crosses a threshold while
 * the queue is backed up, resuming once it drains.
 *
 * Usage: bench_ablate_throttle [scale-percent]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 100;
    const std::vector<unsigned> thresholds = {0, 90, 75, 50};

    std::printf("=== Ablation: A-pipe issue moderation (deferral-rate "
                "throttle) ===\n\n");
    sim::TextTable t;
    std::vector<std::string> hdr = {"benchmark"};
    for (unsigned th : thresholds) {
        hdr.push_back(th == 0 ? std::string("off")
                              : ("thr" + std::to_string(th) + "%"));
    }
    hdr.push_back("pause-cyc@50%");
    t.header(hdr);

    for (const auto &name : workloads::workloadNames()) {
        const workloads::Workload w =
            workloads::buildWorkload(name, scale);
        std::vector<std::string> row = {name};
        double off_cycles = 0.0;
        std::uint64_t pauses_at_50 = 0;
        for (unsigned th : thresholds) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.aPipeThrottlePercent = th;
            const sim::SimOutcome o =
                sim::simulate(w.program, sim::CpuKind::kTwoPass, cfg);
            const double c = static_cast<double>(o.run.cycles);
            if (th == 0)
                off_cycles = c;
            if (th == 50)
                pauses_at_50 = o.twopass.aStallThrottled;
            row.push_back(sim::fixed(c / off_cycles, 3));
        }
        row.push_back(std::to_string(pauses_at_50));
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(finding: a deferral-RATE trigger is the wrong "
                "signal -- benchmarks that defer heavily, like "
                "183.equake, still profit from the loads the A-pipe "
                "pre-executes between deferrals, so pausing costs "
                "cycles. Moderation needs to key on pre-executed-load "
                "yield, not deferral counts.)\n");
    return 0;
}
