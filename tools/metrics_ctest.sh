#!/usr/bin/env bash
# ctest wrapper: emit a fresh --metrics-out document and validate it
# against tools/metrics_schema.json, so the exporter and the schema
# are re-checked on every test run, not only in the CI bench-smoke
# step.
#
# Usage: tools/metrics_ctest.sh <ffvm-path> <tools-dir>
set -euo pipefail

ffvm="${1:?usage: metrics_ctest.sh <ffvm-path> <tools-dir>}"
tools_dir="${2:?usage: metrics_ctest.sh <ffvm-path> <tools-dir>}"

doc="$(mktemp --suffix=.json)"
trap 'rm -f "$doc"' EXIT

"$ffvm" --workload 129.compress --scale 5 --model 2P --profile \
    --metrics-out="$doc" > /dev/null
python3 "$tools_dir/validate_metrics.py" "$doc"
