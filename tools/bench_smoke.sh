#!/usr/bin/env bash
# Smoke test for the parallel experiment engine: run bench_fig6 at a
# small scale serially and in parallel, require bit-identical tables
# (only the [engine] footer may differ — it reports jobs and wall
# time), and record wall-clock + sim-cycles/sec in BENCH_fig6.json.
#
# Usage: tools/bench_smoke.sh [build-dir] [scale-percent]
set -euo pipefail

build_dir="${1:-build}"
scale="${2:-25}"
jobs="${FF_JOBS:-$(nproc)}"
bench="$build_dir/bench/bench_fig6"

if [ ! -x "$bench" ]; then
    echo "bench_smoke: $bench is not built" >&2
    exit 1
fi

serial="$(mktemp)"
par="$(mktemp)"
trap 'rm -f "$serial" "$par"' EXIT

"$bench" --jobs 1 "$scale" | grep -v '^\[engine\]' > "$serial"
"$bench" --jobs "$jobs" --json BENCH_fig6.json "$scale" \
    | grep -v '^\[engine\]' > "$par"

if ! diff -u "$serial" "$par"; then
    echo "bench_smoke: FAIL — tables differ between --jobs 1 and" \
         "--jobs $jobs" >&2
    exit 1
fi

echo "bench_smoke: tables bit-identical at --jobs 1 and --jobs $jobs"
