#!/usr/bin/env bash
# Smoke test for the parallel experiment engine and the statistics
# pipeline:
#  1. run bench_fig6 at a small scale serially and in parallel,
#     require bit-identical tables (only the [engine] footer may
#     differ — it reports jobs and wall time), and record wall-clock
#     + sim-cycles/sec in BENCH_fig6.json;
#  2. diff the full ffvm statsReport() dump of one workload per CPU
#     model against the committed goldens in tools/golden/, so any
#     unintended change to model behaviour or stat rendering fails
#     loudly (regenerate deliberately with the printed command).
#
# Usage: tools/bench_smoke.sh [build-dir] [scale-percent]
set -euo pipefail

build_dir="${1:-build}"
scale="${2:-25}"
jobs="${FF_JOBS:-$(nproc)}"
bench="$build_dir/bench/bench_fig6"
ffvm="$build_dir/tools/ffvm"
golden_dir="$(dirname "$0")/golden"

if [ ! -x "$bench" ]; then
    echo "bench_smoke: $bench is not built" >&2
    exit 1
fi

serial="$(mktemp)"
par="$(mktemp)"
trap 'rm -f "$serial" "$par"' EXIT

"$bench" --jobs 1 "$scale" | grep -v '^\[engine\]' > "$serial"
"$bench" --jobs "$jobs" --json BENCH_fig6.json "$scale" \
    | grep -v '^\[engine\]' > "$par"

if ! diff -u "$serial" "$par"; then
    echo "bench_smoke: FAIL — tables differ between --jobs 1 and" \
         "--jobs $jobs" >&2
    exit 1
fi

echo "bench_smoke: tables bit-identical at --jobs 1 and --jobs $jobs"

# ---- statsReport golden diff (one workload per timed model) --------
if [ ! -x "$ffvm" ]; then
    echo "bench_smoke: $ffvm is not built" >&2
    exit 1
fi

stats_workload="181.mcf"
stats_scale=5
for model in base 2P 2Pre runahead; do
    golden="$golden_dir/${stats_workload}_${model}.stats"
    if [ ! -f "$golden" ]; then
        echo "bench_smoke: missing golden $golden" >&2
        exit 1
    fi
    got="$(mktemp)"
    "$ffvm" --workload "$stats_workload" --scale "$stats_scale" \
        --model "$model" --stats > "$got"
    if ! diff -u "$golden" "$got"; then
        echo "bench_smoke: FAIL — $model statsReport differs from" \
             "$golden (regenerate with: $ffvm --workload" \
             "$stats_workload --scale $stats_scale --model $model" \
             "--stats > $golden)" >&2
        rm -f "$got"
        exit 1
    fi
    rm -f "$got"
done

echo "bench_smoke: statsReport goldens match for base/2P/2Pre/runahead"
