#!/usr/bin/env bash
# Smoke test for the parallel experiment engine and the statistics
# pipeline:
#  1. run bench_fig6 at a small scale serially and in parallel,
#     require bit-identical tables (only the [engine] footer may
#     differ — it reports jobs and wall time), and append the
#     wall-clock + sim-cycles/sec record to BENCH_fig6.json (a JSON
#     array: one timestamped record per run, so the file accumulates
#     a throughput trajectory across CI runs);
#  2. diff the full ffvm statsReport() dump of one workload per CPU
#     model against the committed goldens in tools/golden/, so any
#     unintended change to model behaviour or stat rendering fails
#     loudly (regenerate deliberately with the printed command);
#  3. emit a --profile --metrics-out JSON document for the same
#     workload on every timed model and validate each against
#     tools/metrics_schema.json, so the exported document and the
#     schema cannot drift apart.
#
# Usage: tools/bench_smoke.sh [build-dir] [scale-percent]
set -euo pipefail

build_dir="${1:-build}"
scale="${2:-25}"
jobs="${FF_JOBS:-$(nproc)}"
bench="$build_dir/bench/bench_fig6"
ffvm="$build_dir/tools/ffvm"
golden_dir="$(dirname "$0")/golden"

if [ ! -x "$bench" ]; then
    echo "bench_smoke: $bench is not built" >&2
    exit 1
fi

serial="$(mktemp)"
par="$(mktemp)"
record="$(mktemp)"
trap 'rm -f "$serial" "$par" "$record"' EXIT

"$bench" --jobs 1 "$scale" | grep -v '^\[engine\]' > "$serial"
"$bench" --jobs "$jobs" --json "$record" "$scale" \
    | grep -v '^\[engine\]' > "$par"

if ! diff -u "$serial" "$par"; then
    echo "bench_smoke: FAIL — tables differ between --jobs 1 and" \
         "--jobs $jobs" >&2
    exit 1
fi

echo "bench_smoke: tables bit-identical at --jobs 1 and --jobs $jobs"

# Append the timestamped throughput record so BENCH_fig6.json grows
# into a perf trajectory (one array entry per run; a legacy
# single-object file is wrapped on first append).
python3 - "$record" BENCH_fig6.json <<'EOF'
import datetime
import json
import sys

record_path, trajectory_path = sys.argv[1], sys.argv[2]
with open(record_path) as f:
    record = json.load(f)
record["timestamp"] = datetime.datetime.now(
    datetime.timezone.utc).isoformat(timespec="seconds")

try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
except (OSError, json.JSONDecodeError):
    trajectory = []
trajectory.append(record)
with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"bench_smoke: appended run {len(trajectory)} to "
      f"{trajectory_path} "
      f"({record['simCyclesPerSec']:.3g} sim-cycles/s)")
EOF

# ---- statsReport golden diff (one workload per timed model) --------
if [ ! -x "$ffvm" ]; then
    echo "bench_smoke: $ffvm is not built" >&2
    exit 1
fi

stats_workload="181.mcf"
stats_scale=5
for model in base 2P 2Pre runahead; do
    golden="$golden_dir/${stats_workload}_${model}.stats"
    if [ ! -f "$golden" ]; then
        echo "bench_smoke: missing golden $golden" >&2
        exit 1
    fi
    got="$(mktemp)"
    "$ffvm" --workload "$stats_workload" --scale "$stats_scale" \
        --model "$model" --stats > "$got"
    if ! diff -u "$golden" "$got"; then
        echo "bench_smoke: FAIL — $model statsReport differs from" \
             "$golden (regenerate with: $ffvm --workload" \
             "$stats_workload --scale $stats_scale --model $model" \
             "--stats > $golden)" >&2
        rm -f "$got"
        exit 1
    fi
    rm -f "$got"
done

echo "bench_smoke: statsReport goldens match for base/2P/2Pre/runahead"

# ---- metrics JSON schema validation (one run per timed model) ------
tools_dir="$(dirname "$0")"
metrics_docs=()
for model in base 2P 2Pre runahead; do
    doc="$(mktemp --suffix=.json)"
    metrics_docs+=("$doc")
    "$ffvm" --workload="$stats_workload" --scale "$stats_scale" \
        --model "$model" --profile --metrics-out="$doc" > /dev/null
done
if ! python3 "$tools_dir/validate_metrics.py" "${metrics_docs[@]}"; then
    echo "bench_smoke: FAIL — emitted metrics JSON violates" \
         "$tools_dir/metrics_schema.json" >&2
    rm -f "${metrics_docs[@]}"
    exit 1
fi
rm -f "${metrics_docs[@]}"

echo "bench_smoke: metrics documents validate against the schema"
