#!/usr/bin/env bash
# Smoke test for the parallel experiment engine and the statistics
# pipeline:
#  1. run bench_fig6 at a small scale serially and in parallel,
#     require bit-identical tables (only the [engine] footer may
#     differ — it reports jobs and wall time), and append the
#     wall-clock + sim-cycles/sec record to BENCH_fig6.json (a JSON
#     array: one timestamped record per run, so the file accumulates
#     a throughput trajectory across CI runs);
#  2. measure cached sweep throughput: one cold run with a fresh
#     FF_CACHE_DIR and a warm-up fork prefix fills the result cache,
#     then three warm runs replay it; the median warm wall time, the
#     cache hit/miss counts and the warm speedup are folded into the
#     same BENCH_fig6.json record, and every warm table must stay
#     bit-identical to the uncached serial run;
#  3. diff the full ffvm statsReport() dump of one workload per CPU
#     model against the committed goldens in tools/golden/, so any
#     unintended change to model behaviour or stat rendering fails
#     loudly (regenerate deliberately with the printed command);
#  4. emit a --profile --metrics-out JSON document for the same
#     workload on every timed model and validate each against
#     tools/metrics_schema.json, so the exported document and the
#     schema cannot drift apart;
#  5. gate sampled simulation (bench_sampled): the sampled estimator
#     must stay within 2% relative IPC error of full detailed
#     simulation while running >= 3x faster on the fig6 suite, and
#     the error/speedup record joins the same trajectory file.
#
# Usage: tools/bench_smoke.sh [build-dir] [scale-percent]
set -euo pipefail

build_dir="${1:-build}"
scale="${2:-25}"
jobs="${FF_JOBS:-$(nproc)}"
bench="$build_dir/bench/bench_fig6"
ffvm="$build_dir/tools/ffvm"
golden_dir="$(dirname "$0")/golden"

if [ ! -x "$bench" ]; then
    echo "bench_smoke: $bench is not built" >&2
    exit 1
fi

serial="$(mktemp)"
par="$(mktemp)"
record="$(mktemp)"
trap 'rm -f "$serial" "$par" "$record"' EXIT

"$bench" --jobs 1 "$scale" | grep -v '^\[engine\]' > "$serial"
"$bench" --jobs "$jobs" --json "$record" "$scale" \
    | grep -v '^\[engine\]' > "$par"

if ! diff -u "$serial" "$par"; then
    echo "bench_smoke: FAIL — tables differ between --jobs 1 and" \
         "--jobs $jobs" >&2
    exit 1
fi

echo "bench_smoke: tables bit-identical at --jobs 1 and --jobs $jobs"

# ---- cached throughput: cold fills the cache, warm replays it ------
warmup_cycles=20000
cache_dir="$(mktemp -d)"
cold_json="$(mktemp)"
warm_json="$(mktemp)"
warm_table="$(mktemp)"
warm_walls=()
trap 'rm -rf "$serial" "$par" "$record" "$cache_dir" "$cold_json" \
         "$warm_json" "$warm_table"' EXIT

FF_CACHE_DIR="$cache_dir" "$bench" --jobs "$jobs" \
    --json "$cold_json" --warmup "$warmup_cycles" "$scale" \
    | grep -v '^\[engine\]' > "$warm_table"
if ! diff -u "$serial" "$warm_table"; then
    echo "bench_smoke: FAIL — cold cached run (warm-up fork) differs" \
         "from the uncached serial tables" >&2
    exit 1
fi
for i in 1 2 3; do
    FF_CACHE_DIR="$cache_dir" "$bench" --jobs "$jobs" \
        --json "$warm_json" --warmup "$warmup_cycles" "$scale" \
        | grep -v '^\[engine\]' > "$warm_table"
    if ! diff -u "$serial" "$warm_table"; then
        echo "bench_smoke: FAIL — warm cached run $i differs from" \
             "the uncached serial tables" >&2
        exit 1
    fi
    warm_walls+=("$(python3 -c \
        "import json,sys; print(json.load(open(sys.argv[1]))['wallSeconds'])" \
        "$warm_json")")
done

# Append the timestamped throughput record so BENCH_fig6.json grows
# into a perf trajectory (one array entry per run; a legacy
# single-object file is wrapped on first append). The cached cold/warm
# measurement rides along inside the same record.
python3 - "$record" BENCH_fig6.json "$cold_json" "$warm_json" \
    "${warm_walls[@]}" <<'EOF'
import datetime
import json
import statistics
import sys

record_path, trajectory_path = sys.argv[1], sys.argv[2]
cold_path, warm_path = sys.argv[3], sys.argv[4]
warm_walls = [float(w) for w in sys.argv[5:]]
with open(record_path) as f:
    record = json.load(f)
record["timestamp"] = datetime.datetime.now(
    datetime.timezone.utc).isoformat(timespec="seconds")

with open(cold_path) as f:
    cold = json.load(f)
with open(warm_path) as f:
    warm = json.load(f)  # last warm run: carries the hit/miss counts
median_warm = statistics.median(warm_walls)
record["warmupCycles"] = cold["warmupCycles"]
record["coldCachedWallSeconds"] = cold["wallSeconds"]
record["warmWallSecondsMedian"] = round(median_warm, 3)
record["cacheHits"] = warm["cacheHits"]
record["cacheMisses"] = warm["cacheMisses"]
speedup = cold["wallSeconds"] / max(median_warm, 1e-9)
record["warmSpeedup"] = round(speedup, 2)
print(f"bench_smoke: cached sweep cold {cold['wallSeconds']:.2f} s, "
      f"warm median {median_warm:.2f} s over {len(warm_walls)} runs "
      f"({record['warmSpeedup']}x, {warm['cacheHits']} hits / "
      f"{warm['cacheMisses']} misses)")
if warm["cacheMisses"] != 0 or warm["cacheHits"] != warm["sims"]:
    sys.exit("bench_smoke: FAIL — warm run was not fully cached")
if speedup < 1.5:
    sys.exit(f"bench_smoke: FAIL — warm speedup {speedup:.2f}x "
             f"below the 1.5x floor")

try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
except (OSError, json.JSONDecodeError):
    trajectory = []
trajectory.append(record)
with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"bench_smoke: appended run {len(trajectory)} to "
      f"{trajectory_path} "
      f"({record['simCyclesPerSec']:.3g} sim-cycles/s)")
EOF

# ---- hot-path throughput gate (bench_tick) -------------------------
# bench_tick measures raw sim-cycles/sec per model on an L1-resident
# kernel — the per-cycle hot path with the memory system quiet. Gate
# it with a conservative floor so a hot-path regression (an accidental
# O(n) scan, a devirtualization loss) fails CI even when the figure
# tables still agree, and append the record to the same trajectory
# file. Override the floor with FF_TICK_FLOOR (sim-cycles/s).
tick_bench="$build_dir/bench/bench_tick"
tick_floor="${FF_TICK_FLOOR:-4000000}"
if [ ! -x "$tick_bench" ]; then
    echo "bench_smoke: $tick_bench is not built" >&2
    exit 1
fi
tick_json="$(mktemp)"
trap 'rm -rf "$serial" "$par" "$record" "$cache_dir" "$cold_json" \
         "$warm_json" "$warm_table" "$tick_json"' EXIT
"$tick_bench" --json "$tick_json" "$scale" > /dev/null
python3 - "$tick_json" BENCH_fig6.json "$tick_floor" <<'EOF'
import datetime
import json
import sys

tick_path, trajectory_path, floor = \
    sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(tick_path) as f:
    record = json.load(f)
record["timestamp"] = datetime.datetime.now(
    datetime.timezone.utc).isoformat(timespec="seconds")

rate = record["simCyclesPerSec"]
print(f"bench_smoke: bench_tick {rate:.3g} sim-cycles/s "
      f"(floor {floor:.3g})")
# The tracer-attached pass is informational: it prices the pipeview
# observer but is not floor-gated (only the detached hot path is).
for row in record.get("perModel", []):
    traced = row.get("simCyclesPerSecTraced")
    if traced:
        print(f"bench_smoke:   {row['model']}: "
              f"{row['simCyclesPerSec']:.3g} detached, "
              f"{traced:.3g} traced sim-cycles/s")
if rate < floor:
    sys.exit(f"bench_smoke: FAIL — bench_tick throughput {rate:.3g} "
             f"sim-cycles/s below the {floor:.3g} floor")

try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
except (OSError, json.JSONDecodeError):
    trajectory = []
trajectory.append(record)
with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
EOF

# ---- sampled simulation gate (bench_sampled) -----------------------
# bench_sampled runs the full fig6 suite twice — full detailed and
# sampled — and reports the relative IPC error and wall-clock speedup
# of the estimator. Gate both (error <= 2%, speedup >= 3x at the
# default 32000:4000 config) and append the record to the trajectory
# file. Scale 1600 is where the headline trade holds: long enough
# that the detailed fraction is small, short enough for CI. Override
# with FF_SAMPLED_SCALE; the cache must stay off for this section —
# cache hits would time the cache, not the simulator.
sampled_bench="$build_dir/bench/bench_sampled"
sampled_scale="${FF_SAMPLED_SCALE:-1600}"
if [ ! -x "$sampled_bench" ]; then
    echo "bench_smoke: $sampled_bench is not built" >&2
    exit 1
fi
sampled_json="$(mktemp)"
trap 'rm -rf "$serial" "$par" "$record" "$cache_dir" "$cold_json" \
         "$warm_json" "$warm_table" "$tick_json" "$sampled_json"' EXIT
env -u FF_CACHE_DIR "$sampled_bench" --json "$sampled_json" \
    --max-err 2.0 --min-speedup 3.0 "$sampled_scale" > /dev/null
python3 - "$sampled_json" BENCH_fig6.json <<'EOF'
import datetime
import json
import sys

sampled_path, trajectory_path = sys.argv[1], sys.argv[2]
with open(sampled_path) as f:
    record = json.load(f)
record["timestamp"] = datetime.datetime.now(
    datetime.timezone.utc).isoformat(timespec="seconds")
print(f"bench_smoke: sampled fig6 max err "
      f"{record['maxRelErrPct']:.2f}% (mean "
      f"{record['meanRelErrPct']:.2f}%), speedup "
      f"{record['sampledSpeedup']}x over full detailed "
      f"({record['fullWallSeconds']:.2f} s -> "
      f"{record['sampledWallSeconds']:.2f} s)")

try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
except (OSError, json.JSONDecodeError):
    trajectory = []
trajectory.append(record)
with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
EOF

# ---- statsReport golden diff (one workload per timed model) --------
if [ ! -x "$ffvm" ]; then
    echo "bench_smoke: $ffvm is not built" >&2
    exit 1
fi

stats_workload="181.mcf"
stats_scale=5
for model in base 2P 2Pre runahead; do
    golden="$golden_dir/${stats_workload}_${model}.stats"
    if [ ! -f "$golden" ]; then
        echo "bench_smoke: missing golden $golden" >&2
        exit 1
    fi
    got="$(mktemp)"
    "$ffvm" --workload "$stats_workload" --scale "$stats_scale" \
        --model "$model" --stats > "$got"
    if ! diff -u "$golden" "$got"; then
        echo "bench_smoke: FAIL — $model statsReport differs from" \
             "$golden (regenerate with: $ffvm --workload" \
             "$stats_workload --scale $stats_scale --model $model" \
             "--stats > $golden)" >&2
        rm -f "$got"
        exit 1
    fi
    rm -f "$got"
done

echo "bench_smoke: statsReport goldens match for base/2P/2Pre/runahead"

# ---- metrics JSON schema validation (one run per timed model) ------
tools_dir="$(dirname "$0")"
metrics_docs=()
for model in base 2P 2Pre runahead; do
    doc="$(mktemp --suffix=.json)"
    metrics_docs+=("$doc")
    "$ffvm" --workload="$stats_workload" --scale "$stats_scale" \
        --model "$model" --profile --metrics-out="$doc" > /dev/null
done
if ! python3 "$tools_dir/validate_metrics.py" "${metrics_docs[@]}"; then
    echo "bench_smoke: FAIL — emitted metrics JSON violates" \
         "$tools_dir/metrics_schema.json" >&2
    rm -f "${metrics_docs[@]}"
    exit 1
fi
rm -f "${metrics_docs[@]}"

echo "bench_smoke: metrics documents validate against the schema"
