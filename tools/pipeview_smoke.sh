#!/usr/bin/env bash
# End-to-end gate for the pipeline tracing path:
#  1. a scheduled two-pass run of examples/asm/dotprod.s writes an
#     ffpipe trace via --trace-out;
#  2. ffview renders it twice and both renderings are identical (the
#     ASCII diagram is deterministic) and match the committed golden
#     tools/golden/pipeview_dotprod.txt (regenerate deliberately with
#     the printed command);
#  3. the Chrome trace-event JSON export passes validate_trace.py;
#  4. a truncated prefix and a bit-flipped copy of the trace are both
#     rejected by ffview instead of decoding to garbage.
#
# Usage: tools/pipeview_smoke.sh <ffvm> <ffview> <source-dir>
set -euo pipefail

ffvm="$1"
ffview="$2"
srcdir="$3"

for bin in "$ffvm" "$ffview"; do
    if [ ! -x "$bin" ]; then
        echo "pipeview_smoke: $bin is not built" >&2
        exit 1
    fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Run from the source dir with a relative program path so the program
# name embedded in the trace header (and hence the golden rendering)
# is machine-independent.
cd "$srcdir"
"$ffvm" examples/asm/dotprod.s --schedule --model 2P \
    --trace-out="$tmp/dotprod.ffpipe" > "$tmp/run.out"
grep -q 'trace: wrote' "$tmp/run.out"

# ---- deterministic rendering + golden pin --------------------------
"$ffview" "$tmp/dotprod.ffpipe" --rows 24 > "$tmp/render.txt"
"$ffview" "$tmp/dotprod.ffpipe" --rows 24 > "$tmp/render2.txt"
if ! diff -u "$tmp/render.txt" "$tmp/render2.txt"; then
    echo "pipeview_smoke: FAIL — rendering is nondeterministic" >&2
    exit 1
fi
golden="tools/golden/pipeview_dotprod.txt"
if [ ! -f "$golden" ]; then
    echo "pipeview_smoke: missing golden $golden" >&2
    exit 1
fi
if ! diff -u "$golden" "$tmp/render.txt"; then
    echo "pipeview_smoke: FAIL — rendering differs from $golden" \
         "(regenerate with: $ffvm examples/asm/dotprod.s --schedule" \
         "--model 2P --trace-out=/tmp/d.ffpipe && $ffview" \
         "/tmp/d.ffpipe --rows 24 > $golden)" >&2
    exit 1
fi

# ---- Perfetto JSON export validates --------------------------------
"$ffview" "$tmp/dotprod.ffpipe" --json "$tmp/trace.json" > /dev/null
python3 tools/validate_trace.py "$tmp/trace.json"

# ---- summary mode works on the same trace --------------------------
"$ffview" "$tmp/dotprod.ffpipe" --summary | grep -q 'lifetimes:'

# ---- corrupt and truncated inputs are rejected ---------------------
head -c 48 "$tmp/dotprod.ffpipe" > "$tmp/trunc.ffpipe"
if "$ffview" "$tmp/trunc.ffpipe" > /dev/null 2>&1; then
    echo "pipeview_smoke: FAIL — truncated trace was accepted" >&2
    exit 1
fi
# Flip one byte of the magic.
cp "$tmp/dotprod.ffpipe" "$tmp/corrupt.ffpipe"
printf '\x00' | dd of="$tmp/corrupt.ffpipe" bs=1 seek=1 count=1 \
    conv=notrunc status=none
if "$ffview" "$tmp/corrupt.ffpipe" > /dev/null 2>&1; then
    echo "pipeview_smoke: FAIL — corrupt trace was accepted" >&2
    exit 1
fi

echo "pipeview_smoke: PASS"
