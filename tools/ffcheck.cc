/**
 * @file
 * ffcheck — the static program verifier CLI. Assembles .s files (or
 * builds the bundled workload suite) and runs the full diagnostic
 * pipeline: def-before-use, issue-group legality, control-flow and
 * predicate sanity, range-propagated memory checks and register
 * pressure. Diagnostics carry .s line numbers where the assembler
 * recorded them, and can be exported machine-readably as SARIF 2.1.0
 * or a flat JSON diagnostics array.
 *
 *   ffcheck prog.s                 # check as written (hand groups)
 *   ffcheck --schedule prog.s      # check the scheduled form
 *   ffcheck --sched-alias prog.s   # schedule with the alias oracle
 *   ffcheck --strict prog.s        # warnings also fail
 *   ffcheck --workloads            # verify the ten bundled kernels
 *   ffcheck --sarif=out.sarif p.s  # also write a SARIF log
 *   ffcheck --json[=out.json] p.s  # also write flat JSON findings
 *   ffcheck --predict-stalls p.s   # static per-block stall model
 *
 * Exit status: 0 when every program verifies, 1 when any fails,
 * 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/ffcheck.hh"
#include "analysis/memdep.hh"
#include "analysis/sarif.hh"
#include "analysis/stallpred.hh"
#include "compiler/scheduler.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--schedule] [--sched-alias] [--strict] "
                 "[--notes] [--workloads]\n"
                 "       %*s [--sarif=FILE] [--json[=FILE]] "
                 "[--predict-stalls[=LAT]] <program.s>...\n"
                 "  --schedule        run the issue-group scheduler "
                 "before checking\n"
                 "  --sched-alias     schedule with the memory-"
                 "dependence alias oracle\n"
                 "                    (implies --schedule)\n"
                 "  --strict          treat warnings as failures\n"
                 "  --notes           also print informational notes "
                 "(register pressure)\n"
                 "  --workloads       verify the bundled workload "
                 "suite instead of files\n"
                 "  --sarif=FILE      write the findings as a SARIF "
                 "2.1.0 log\n"
                 "  --json[=FILE]     write the findings as flat JSON "
                 "(default stdout)\n"
                 "  --predict-stalls[=LAT]\n"
                 "                    print the static per-block stall "
                 "prediction at an\n"
                 "                    effective load-use latency of "
                 "LAT cycles (default 2)\n",
                 argv0, static_cast<int>(std::strlen(argv0)), "");
    std::exit(2);
}

struct Options
{
    bool schedule = false;
    bool schedAlias = false;
    bool strict = false;
    bool notes = false;
    bool sarif = false;
    bool json = false;
    bool predictStalls = false;
    double predictLat = 2.0;
    std::string sarifPath;
    std::string jsonPath; ///< empty: stdout
};

bool
writeOrPrint(const std::string &path, const std::string &text)
{
    if (path.empty() || path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "%s: cannot write\n", path.c_str());
        return false;
    }
    out << text;
    return out.good();
}

/** Renders the static stall model's per-block table. */
std::string
renderStallPrediction(const isa::Program &prog, double lat)
{
    const analysis::Cfg cfg(prog);
    const analysis::StallPredictor pred(cfg);
    const analysis::StallPrediction p = pred.predict(lat);
    std::ostringstream oss;
    oss << "predicted stalls at effective load latency " << lat
        << ":\n";
    oss << "  block   insts      groups  cycles  load-stall  "
           "other-stall\n";
    double cycles = 0, load = 0, other = 0;
    for (const analysis::PredictedBlock &b : p.blocks) {
        char line[96];
        std::snprintf(line, sizeof(line),
                      "  %5zu   [%4u,%4u)  %6u  %6.1f  %10.1f  %11.1f\n",
                      b.block, b.begin, b.end, b.groups, b.cycles,
                      b.loadStall, b.otherStall);
        oss << line;
        cycles += b.cycles;
        load += b.loadStall;
        other += b.otherStall;
    }
    char tot[96];
    std::snprintf(tot, sizeof(tot),
                  "  total              %*s  %6.1f  %10.1f  %11.1f\n",
                  6, "", cycles, load, other);
    oss << tot;
    return oss.str();
}

/** Checks one named program; returns true if it verifies. */
bool
checkProgram(const isa::Program &prog, const std::string &label,
             const Options &opt)
{
    analysis::CheckOptions copts;
    const analysis::Report rep = analysis::check(prog, copts);
    const std::string text = analysis::render(rep, label, opt.notes);
    if (!text.empty())
        std::fputs(text.c_str(), stdout);
    bool ok = rep.clean(opt.strict);
    if (opt.sarif &&
        !writeOrPrint(opt.sarifPath, analysis::renderSarif(rep, label)))
        ok = false;
    if (opt.json &&
        !writeOrPrint(opt.jsonPath, analysis::renderJson(rep, label)))
        ok = false;
    if (opt.predictStalls) {
        std::fputs(renderStallPrediction(prog, opt.predictLat).c_str(),
                   stdout);
    }
    std::printf("%s: %s (%u error%s, %u warning%s)\n", label.c_str(),
                ok ? "ok" : "FAILED", rep.errors(),
                rep.errors() == 1 ? "" : "s", rep.warnings(),
                rep.warnings() == 1 ? "" : "s");
    return ok;
}

bool
checkFile(const std::string &path, const Options &opt)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    isa::Program prog;
    const std::string err = isa::assemble(buf.str(), path, &prog);
    if (!err.empty()) {
        std::printf("%s: error: [assemble] %s\n", path.c_str(),
                    err.c_str());
        std::printf("%s: FAILED (assembly error)\n", path.c_str());
        return false;
    }
    if (opt.schedAlias)
        prog = analysis::scheduleWithAlias(isa::sequentialize(prog));
    else if (opt.schedule)
        prog = compiler::schedule(isa::sequentialize(prog));
    return checkProgram(prog, path, opt);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool do_workloads = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--schedule")
            opt.schedule = true;
        else if (a == "--sched-alias")
            opt.schedAlias = opt.schedule = true;
        else if (a == "--strict")
            opt.strict = true;
        else if (a == "--notes")
            opt.notes = true;
        else if (a == "--workloads")
            do_workloads = true;
        else if (a.rfind("--sarif=", 0) == 0) {
            opt.sarif = true;
            opt.sarifPath = a.substr(std::strlen("--sarif="));
        } else if (a == "--json")
            opt.json = true;
        else if (a.rfind("--json=", 0) == 0) {
            opt.json = true;
            opt.jsonPath = a.substr(std::strlen("--json="));
        } else if (a == "--predict-stalls")
            opt.predictStalls = true;
        else if (a.rfind("--predict-stalls=", 0) == 0) {
            opt.predictStalls = true;
            opt.predictLat =
                std::atof(a.c_str() + std::strlen("--predict-stalls="));
            if (opt.predictLat < 1.0)
                usage(argv[0]);
        } else if (!a.empty() && a[0] == '-')
            usage(argv[0]);
        else
            paths.push_back(a);
    }
    if (paths.empty() && !do_workloads)
        usage(argv[0]);
    // Machine-readable exports cover exactly one program per file.
    if ((opt.sarif || opt.json) &&
        (do_workloads || paths.size() != 1)) {
        std::fprintf(stderr, "%s: --sarif/--json need exactly one "
                             "input program\n",
                     argv[0]);
        return 2;
    }

    unsigned failed = 0;
    if (do_workloads) {
        // A reduced scale keeps this fast; the kernels' structure
        // (and therefore every static property) is scale-invariant.
        for (const workloads::Workload &w :
             workloads::buildAllWorkloads(25)) {
            if (!checkProgram(w.program, w.name, opt))
                ++failed;
        }
    }
    for (const std::string &p : paths) {
        if (!checkFile(p, opt))
            ++failed;
    }
    if (failed > 0) {
        std::printf("%u program%s failed verification\n", failed,
                    failed == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
