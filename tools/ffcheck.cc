/**
 * @file
 * ffcheck — the static program verifier CLI. Assembles .s files (or
 * builds the bundled workload suite) and runs the full diagnostic
 * pipeline: def-before-use, issue-group legality, control-flow and
 * predicate sanity, constant-propagated memory checks and register
 * pressure. Diagnostics carry .s line numbers where the assembler
 * recorded them.
 *
 *   ffcheck prog.s                 # check as written (hand groups)
 *   ffcheck --schedule prog.s      # check the scheduled form
 *   ffcheck --strict prog.s        # warnings also fail
 *   ffcheck --workloads            # verify the ten bundled kernels
 *
 * Exit status: 0 when every program verifies, 1 when any fails,
 * 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ffcheck.hh"
#include "compiler/scheduler.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--schedule] [--strict] [--notes] "
                 "[--workloads] <program.s>...\n"
                 "  --schedule   run the issue-group scheduler before "
                 "checking\n"
                 "  --strict     treat warnings as failures\n"
                 "  --notes      also print informational notes "
                 "(register pressure)\n"
                 "  --workloads  verify the bundled workload suite "
                 "instead of files\n",
                 argv0);
    std::exit(2);
}

struct Options
{
    bool schedule = false;
    bool strict = false;
    bool notes = false;
};

/** Checks one named program; returns true if it verifies. */
bool
checkProgram(const isa::Program &prog, const std::string &label,
             const Options &opt)
{
    analysis::CheckOptions copts;
    const analysis::Report rep = analysis::check(prog, copts);
    const std::string text = analysis::render(rep, label, opt.notes);
    if (!text.empty())
        std::fputs(text.c_str(), stdout);
    const bool ok = rep.clean(opt.strict);
    std::printf("%s: %s (%u error%s, %u warning%s)\n", label.c_str(),
                ok ? "ok" : "FAILED", rep.errors(),
                rep.errors() == 1 ? "" : "s", rep.warnings(),
                rep.warnings() == 1 ? "" : "s");
    return ok;
}

bool
checkFile(const std::string &path, const Options &opt)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    isa::Program prog;
    const std::string err = isa::assemble(buf.str(), path, &prog);
    if (!err.empty()) {
        std::printf("%s: error: [assemble] %s\n", path.c_str(),
                    err.c_str());
        std::printf("%s: FAILED (assembly error)\n", path.c_str());
        return false;
    }
    if (opt.schedule)
        prog = compiler::schedule(isa::sequentialize(prog));
    return checkProgram(prog, path, opt);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool do_workloads = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--schedule")
            opt.schedule = true;
        else if (a == "--strict")
            opt.strict = true;
        else if (a == "--notes")
            opt.notes = true;
        else if (a == "--workloads")
            do_workloads = true;
        else if (!a.empty() && a[0] == '-')
            usage(argv[0]);
        else
            paths.push_back(a);
    }
    if (paths.empty() && !do_workloads)
        usage(argv[0]);

    unsigned failed = 0;
    if (do_workloads) {
        // A reduced scale keeps this fast; the kernels' structure
        // (and therefore every static property) is scale-invariant.
        for (const workloads::Workload &w :
             workloads::buildAllWorkloads(25)) {
            if (!checkProgram(w.program, w.name, opt))
                ++failed;
        }
    }
    for (const std::string &p : paths) {
        if (!checkFile(p, opt))
            ++failed;
    }
    if (failed > 0) {
        std::printf("%u program%s failed verification\n", failed,
                    failed == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
