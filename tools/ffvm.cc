/**
 * @file
 * ffvm — the command-line simulator driver. Assembles an ffvm .s
 * file (or builds a bundled workload), optionally runs the
 * issue-group scheduler over it, executes it on a chosen CPU model,
 * and reports results.
 *
 *   ffvm program.s                         # functional execution
 *   ffvm program.s --model 2P --schedule   # two-pass, compiler-packed
 *   ffvm program.s --model base --stats    # full statistics dump
 *   ffvm program.s --disasm                # just show the program
 *   ffvm --workload 181.mcf --model 2P --stats   # bundled benchmark
 *
 * Options:
 *   --model functional|base|2P|2Pre|runahead   (default functional)
 *   --workload NAME      simulate a bundled Table 2 workload instead
 *                        of assembling a .s file
 *   --scale P            workload scale percent (default 10)
 *   --schedule           run the list scheduler (issue-group packing)
 *   --disasm             print the (scheduled) program and exit
 *   --stats              print the model's full statistics dump
 *   --trace CATS         comma list: fetch,issue,exec,mem,branch,
 *                        apipe,bpipe,flush,feedback,all
 *   --max-cycles N       simulation budget (default 400M)
 *   --cq N               coupling queue entries
 *   --alat N             ALAT capacity (0 = perfect)
 *   --feedback N|off     B->A feedback latency
 *   --prefetch N         next-line prefetch degree
 *   --mem-lat N          main memory latency
 *   --throttle P         A-pipe deferral throttle percent
 *   --predictor K        gshare|bimodal|tournament
 *   --no-fp-units        A-pipe without FP units (Sec. 3.7)
 *   --verify[=strict]    run the ffcheck static verifier before
 *                        simulating; strict also fails on warnings
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ffcheck.hh"
#include "common/trace.hh"
#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <program.s> [--model "
                 "functional|base|2P|2Pre|runahead] "
                 "[--workload NAME] [--scale P] [--schedule] "
                 "[--disasm] [--stats] [--trace cats] "
                 "[--max-cycles N] [--cq N] [--alat N] "
                 "[--feedback N|off] [--prefetch N] [--mem-lat N] "
                 "[--throttle P] [--predictor K] [--no-fp-units] "
                 "[--regroup] [--verify[=strict]]\n",
                 argv0);
    std::exit(2);
}

std::uint32_t
traceMask(const std::string &cats)
{
    std::uint32_t mask = 0;
    std::istringstream in(cats);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        if (tok == "fetch") mask |= trace::kFetch;
        else if (tok == "issue") mask |= trace::kIssue;
        else if (tok == "exec") mask |= trace::kExec;
        else if (tok == "mem") mask |= trace::kMem;
        else if (tok == "branch") mask |= trace::kBranch;
        else if (tok == "apipe") mask |= trace::kApipe;
        else if (tok == "bpipe") mask |= trace::kBpipe;
        else if (tok == "flush") mask |= trace::kFlush;
        else if (tok == "feedback") mask |= trace::kFeedback;
        else if (tok == "all") mask |= trace::kAll;
        else
            ff_fatal("unknown trace category '", tok, "'");
    }
    return mask;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);

    std::string path;
    std::string workload;
    int scale = 10;
    std::string model = "functional";
    bool do_schedule = false, do_disasm = false, do_stats = false;
    bool do_verify = false, verify_strict = false;
    std::uint64_t max_cycles = sim::kDefaultMaxCycles;
    cpu::CoreConfig cfg = sim::table1Config();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--model") {
            model = next();
        } else if (a == "--workload") {
            workload = next();
        } else if (a == "--scale") {
            scale = static_cast<int>(
                std::strtol(next().c_str(), nullptr, 0));
        } else if (a == "--schedule") {
            do_schedule = true;
        } else if (a == "--disasm") {
            do_disasm = true;
        } else if (a == "--stats") {
            do_stats = true;
        } else if (a == "--regroup") {
            cfg.regroup = true;
        } else if (a == "--verify") {
            do_verify = true;
        } else if (a == "--verify=strict") {
            do_verify = true;
            verify_strict = true;
        } else if (a == "--trace") {
            trace::enable(traceMask(next()));
        } else if (a == "--max-cycles") {
            max_cycles = std::strtoull(next().c_str(), nullptr, 0);
        } else if (a == "--cq") {
            cfg.couplingQueueSize =
                static_cast<unsigned>(std::strtoul(
                    next().c_str(), nullptr, 0));
        } else if (a == "--alat") {
            cfg.alatCapacity = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (a == "--feedback") {
            const std::string v = next();
            if (v == "off") {
                cfg.feedbackEnabled = false;
            } else {
                cfg.feedbackLatency = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            }
        } else if (a == "--prefetch") {
            cfg.mem.prefetchDegree = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (a == "--mem-lat") {
            cfg.mem.memoryLatency = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (a == "--throttle") {
            cfg.aPipeThrottlePercent = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (a == "--predictor") {
            const std::string v = next();
            if (v == "gshare")
                cfg.predictorKind = branch::PredictorKind::kGshare;
            else if (v == "bimodal")
                cfg.predictorKind = branch::PredictorKind::kBimodal;
            else if (v == "tournament")
                cfg.predictorKind = branch::PredictorKind::kTournament;
            else
                ff_fatal("unknown predictor '", v, "'");
        } else if (a == "--no-fp-units") {
            cfg.aPipeHasFpUnits = false;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(argv[0]);
        } else if (path.empty()) {
            path = a;
        } else {
            usage(argv[0]);
        }
    }
    if (path.empty() == workload.empty())
        usage(argv[0]); // exactly one program source

    isa::Program prog;
    if (!workload.empty()) {
        // Bundled workloads arrive already scheduled for the Table 1
        // widths; --schedule would be redundant but stays legal.
        prog = workloads::buildWorkload(workload, scale).program;
        path = workload;
    } else {
        std::ifstream in(path);
        ff_fatal_if(!in, "cannot open '", path, "'");
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string err = isa::assemble(buf.str(), path, &prog);
        ff_fatal_if(!err.empty(), path, ": ", err);
    }

    if (do_schedule) {
        // The scheduler owns group formation: flatten whatever stop
        // bits the source carried and re-pack under the machine's
        // widths.
        prog = compiler::schedule(isa::sequentialize(prog));
    }
    if (do_verify) {
        analysis::CheckOptions copts;
        copts.limits = cfg.limits;
        const analysis::Report rep = analysis::check(prog, copts);
        const std::string text = analysis::render(rep, path);
        if (!text.empty())
            std::fputs(text.c_str(), stderr);
        if (!rep.clean(verify_strict)) {
            std::fprintf(stderr,
                         "%s: verification failed (%u errors, "
                         "%u warnings)%s\n",
                         path.c_str(), rep.errors(), rep.warnings(),
                         do_schedule ? ""
                                     : " (hint: --schedule forms "
                                       "legal issue groups)");
            return 1;
        }
    }
    {
        const std::string verr = prog.validate(cfg.limits);
        ff_fatal_if(!verr.empty(), path, ": ", verr,
                    do_schedule ? ""
                                : " (hint: try --schedule to form "
                                  "legal issue groups)");
    }

    if (do_disasm) {
        std::printf("%s", isa::disasmProgram(prog).c_str());
        return 0;
    }

    if (model == "functional") {
        cpu::FunctionalCpu cpu(prog);
        const auto r = cpu.run();
        std::printf("halted=%d instructions=%llu groups=%llu "
                    "branches=%llu loads=%llu stores=%llu\n",
                    r.halted ? 1 : 0,
                    static_cast<unsigned long long>(r.instsExecuted),
                    static_cast<unsigned long long>(r.groupsExecuted),
                    static_cast<unsigned long long>(
                        r.branchesExecuted),
                    static_cast<unsigned long long>(r.loadsExecuted),
                    static_cast<unsigned long long>(r.storesExecuted));
        std::printf("checksum[0x100]=%llu\n",
                    static_cast<unsigned long long>(
                        cpu.mem().read64(0x100)));
        return r.halted ? 0 : 1;
    }

    sim::CpuKind kind;
    if (model == "base")
        kind = sim::CpuKind::kBaseline;
    else if (model == "2P")
        kind = sim::CpuKind::kTwoPass;
    else if (model == "2Pre")
        kind = sim::CpuKind::kTwoPassRegroup;
    else if (model == "runahead")
        kind = sim::CpuKind::kRunahead;
    else
        ff_fatal("unknown model '", model, "'");

    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, prog, cfg);
    const cpu::RunResult r = m->run(max_cycles);
    std::printf("model=%s halted=%d cycles=%llu instructions=%llu "
                "ipc=%.3f\n",
                model.c_str(), r.halted ? 1 : 0,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instsRetired),
                r.ipc());
    std::printf("stalls: %s\n",
                m->cycleAccounting().render().c_str());
    std::printf("checksum[0x100]=%llu\n",
                static_cast<unsigned long long>(
                    m->memState().read64(0x100)));
    if (do_stats)
        std::printf("\n%s", m->statsReport().c_str());
    return r.halted ? 0 : 1;
}
