/**
 * @file
 * ffvm — the command-line simulator driver. Assembles an ffvm .s
 * file (or builds a bundled workload), optionally runs the
 * issue-group scheduler over it, executes it on a chosen CPU model,
 * and reports results.
 *
 *   ffvm program.s                         # functional execution
 *   ffvm program.s --model 2P --schedule   # two-pass, compiler-packed
 *   ffvm program.s --model base --stats    # full statistics dump
 *   ffvm program.s --disasm                # just show the program
 *   ffvm --workload 181.mcf --model 2P --stats   # bundled benchmark
 *
 * Every option lives in the kFlags table below: the parser, --help
 * and --dump-flags are all generated from it, so the documentation
 * cannot drift from what the binary accepts (cli_help_check.sh pins
 * this in CI). Value options accept "--opt VALUE" and "--opt=VALUE";
 * options marked optional-value take only the "=" form.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ffcheck.hh"
#include "analysis/memdep.hh"
#include "common/engine_trace.hh"
#include "common/trace.hh"
#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "sim/batch.hh"
#include "sim/harness.hh"
#include "sim/pipe_trace.hh"
#include "sim/result_cache.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

/** What follows a flag on the command line. */
enum class ArgKind
{
    kNone,     ///< boolean switch
    kRequired, ///< --opt VALUE or --opt=VALUE
    kOptional, ///< bare switch, or --opt=VALUE
};

/** One command-line option; the single source of CLI truth. */
struct FlagSpec
{
    const char *name;    ///< including the leading dashes
    ArgKind arg;
    const char *metavar; ///< value placeholder for --help
    const char *help;
};

constexpr FlagSpec kFlags[] = {
    {"--model", ArgKind::kRequired, "KIND",
     "functional|base|2P|2Pre|runahead (default functional, or 2P "
     "when --profile/--metrics-out is given)"},
    {"--workload", ArgKind::kRequired, "NAME",
     "simulate a bundled Table 2 workload instead of assembling a "
     ".s file"},
    {"--scale", ArgKind::kRequired, "P",
     "workload scale percent (default 10)"},
    {"--schedule", ArgKind::kNone, nullptr,
     "run the list scheduler (issue-group packing)"},
    {"--sched-alias", ArgKind::kNone, nullptr,
     "schedule with the memory-dependence alias oracle (provably "
     "disjoint accesses reorder; implies --schedule)"},
    {"--disasm", ArgKind::kNone, nullptr,
     "print the (scheduled) program and exit"},
    {"--stats", ArgKind::kNone, nullptr,
     "print the model's full statistics dump"},
    {"--trace", ArgKind::kRequired, "CATS",
     "comma list: fetch,issue,exec,mem,branch,apipe,bpipe,flush,"
     "feedback,core,engine,all"},
    {"--max-cycles", ArgKind::kRequired, "N",
     "simulation budget (default 400M)"},
    {"--sample", ArgKind::kRequired, "INTERVAL[:DETAIL[:WARMUP]]",
     "sampled simulation: functional checkpoints every INTERVAL "
     "retired slots, parallel detailed replay of DETAIL-slot "
     "measured windows (default INTERVAL/8) after WARMUP warm-up "
     "cycles (default max(DETAIL,512)), statistically stitched into "
     "a whole-run estimate with confidence interval"},
    {"--cq", ArgKind::kRequired, "N", "coupling queue entries"},
    {"--alat", ArgKind::kRequired, "N",
     "ALAT capacity (0 = perfect)"},
    {"--feedback", ArgKind::kRequired, "N|off",
     "B->A feedback latency"},
    {"--prefetch", ArgKind::kRequired, "N",
     "next-line prefetch degree"},
    {"--mem-lat", ArgKind::kRequired, "N", "main memory latency"},
    {"--throttle", ArgKind::kRequired, "P",
     "A-pipe deferral throttle percent"},
    {"--predictor", ArgKind::kRequired, "K",
     "gshare|bimodal|tournament"},
    {"--no-fp-units", ArgKind::kNone, nullptr,
     "A-pipe without FP units (Sec. 3.7)"},
    {"--regroup", ArgKind::kNone, nullptr,
     "dynamic regrouping on the two-pass models"},
    {"--verify", ArgKind::kOptional, "strict",
     "run the ffcheck static verifier before simulating; strict "
     "also fails on warnings"},
    {"--profile", ArgKind::kOptional, "K",
     "per-instruction stall attribution; prints the top K rows "
     "(default 20, 0 = all)"},
    {"--metrics-out", ArgKind::kRequired, "FILE",
     "write the versioned JSON metrics record (implies profile + "
     "telemetry collection)"},
    {"--pipeview", ArgKind::kOptional, "N",
     "record per-instruction lifecycle events and print the first N "
     "lanes of the ASCII pipeline diagram (default 32)"},
    {"--trace-out", ArgKind::kRequired, "FILE",
     "write the run's ffpipe trace (pipeline lifecycle events + "
     "engine spans); render with ffview, or export Perfetto JSON "
     "via ffview --json"},
    {"--cache-dir", ArgKind::kRequired, "DIR",
     "content-addressed result cache directory (also FF_CACHE_DIR); "
     "plain timed runs hit the cache instead of re-simulating"},
    {"--dump-flags", ArgKind::kNone, nullptr,
     "print the option table (name, value kind, metavar) and exit"},
    {"--help", ArgKind::kNone, nullptr, "print usage and exit"},
};

const FlagSpec *
findFlag(const std::string &name)
{
    for (const FlagSpec &f : kFlags)
        if (name == f.name)
            return &f;
    return nullptr;
}

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(out, "usage: %s <program.s> [options]\n\noptions:\n",
                 argv0);
    for (const FlagSpec &f : kFlags) {
        std::string head = f.name;
        if (f.arg == ArgKind::kRequired)
            head += std::string(" ") + f.metavar;
        else if (f.arg == ArgKind::kOptional)
            head += std::string("[=") + f.metavar + "]";
        std::fprintf(out, "  %-22s %s\n", head.c_str(), f.help);
    }
    std::fprintf(out, "\nvalue options accept --opt VALUE and "
                      "--opt=VALUE; options shown as --opt[=X] take "
                      "only the = form\n");
    std::exit(exit_code);
}

/** Machine-readable flag table for the CLI drift check. */
[[noreturn]] void
dumpFlags()
{
    for (const FlagSpec &f : kFlags) {
        const char *kind = f.arg == ArgKind::kNone ? "switch"
                           : f.arg == ArgKind::kRequired
                               ? "required"
                               : "optional";
        std::printf("%s\t%s\t%s\n", f.name, kind,
                    f.metavar != nullptr ? f.metavar : "-");
    }
    std::exit(0);
}

std::uint32_t
traceMask(const std::string &cats)
{
    std::uint32_t mask = 0;
    std::istringstream in(cats);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        if (tok == "fetch") mask |= trace::kFetch;
        else if (tok == "issue") mask |= trace::kIssue;
        else if (tok == "exec") mask |= trace::kExec;
        else if (tok == "mem") mask |= trace::kMem;
        else if (tok == "branch") mask |= trace::kBranch;
        else if (tok == "apipe") mask |= trace::kApipe;
        else if (tok == "bpipe") mask |= trace::kBpipe;
        else if (tok == "flush") mask |= trace::kFlush;
        else if (tok == "feedback") mask |= trace::kFeedback;
        else if (tok == "core") mask |= trace::kCore;
        else if (tok == "engine") mask |= trace::kEngine;
        else if (tok == "all") mask |= trace::kAll;
        else
            ff_fatal("unknown trace category '", tok, "'");
    }
    return mask;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0], 2);

    std::string path;
    std::string workload;
    int scale = 10;
    std::string model;
    bool do_schedule = false, do_disasm = false, do_stats = false;
    bool sched_alias = false;
    bool do_verify = false, verify_strict = false;
    bool do_profile = false, do_trace = false;
    bool do_pipeview = false;
    unsigned profile_k = 20;
    unsigned pipeview_rows = 32;
    std::string metrics_out;
    std::string trace_out;
    std::uint64_t max_cycles = sim::kDefaultMaxCycles;
    sim::SampledOptions sopt;
    cpu::CoreConfig cfg = sim::table1Config();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.empty() || a[0] != '-') {
            if (!path.empty())
                usage(argv[0], 2);
            path = a;
            continue;
        }
        if (a == "-h")
            usage(argv[0], 0);

        // Split --name=value; look the name up in the flag table.
        const std::size_t eq = a.find('=');
        const std::string name =
            eq == std::string::npos ? a : a.substr(0, eq);
        const FlagSpec *spec = findFlag(name);
        if (spec == nullptr) {
            std::fprintf(stderr, "unknown option %s\n", name.c_str());
            usage(argv[0], 2);
        }
        std::string v;
        bool has_value = eq != std::string::npos;
        if (has_value) {
            if (spec->arg == ArgKind::kNone) {
                std::fprintf(stderr, "%s takes no value\n",
                             spec->name);
                usage(argv[0], 2);
            }
            v = a.substr(eq + 1);
        } else if (spec->arg == ArgKind::kRequired) {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            v = argv[++i];
            has_value = true;
        }
        auto num = [&]() -> unsigned {
            return static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 0));
        };

        const std::string n = name;
        if (n == "--help") {
            usage(argv[0], 0);
        } else if (n == "--dump-flags") {
            dumpFlags();
        } else if (n == "--model") {
            model = v;
        } else if (n == "--workload") {
            workload = v;
        } else if (n == "--scale") {
            scale = static_cast<int>(
                std::strtol(v.c_str(), nullptr, 0));
        } else if (n == "--schedule") {
            do_schedule = true;
        } else if (n == "--sched-alias") {
            do_schedule = sched_alias = true;
        } else if (n == "--disasm") {
            do_disasm = true;
        } else if (n == "--stats") {
            do_stats = true;
        } else if (n == "--regroup") {
            cfg.regroup = true;
        } else if (n == "--verify") {
            do_verify = true;
            if (has_value) {
                if (v != "strict")
                    ff_fatal("unknown verify mode '", v, "'");
                verify_strict = true;
            }
        } else if (n == "--profile") {
            do_profile = true;
            if (has_value)
                profile_k = num();
        } else if (n == "--metrics-out") {
            metrics_out = v;
        } else if (n == "--pipeview") {
            do_pipeview = true;
            if (has_value)
                pipeview_rows = num();
        } else if (n == "--trace-out") {
            trace_out = v;
        } else if (n == "--cache-dir") {
            sim::setResultCacheDir(v);
        } else if (n == "--trace") {
            do_trace = true;
            trace::enable(traceMask(v));
        } else if (n == "--max-cycles") {
            max_cycles = std::strtoull(v.c_str(), nullptr, 0);
        } else if (n == "--sample") {
            char *end = nullptr;
            sopt.intervalCycles = std::strtoull(v.c_str(), &end, 0);
            if (*end == ':') {
                const char *detail = end + 1;
                sopt.detailCycles = std::strtoull(detail, &end, 0);
                ff_fatal_if(end == detail || sopt.detailCycles == 0 ||
                                (*end != '\0' && *end != ':'),
                            "bad --sample value '", v,
                            "' (expected INTERVAL[:DETAIL[:WARMUP]])");
                if (*end == ':') {
                    const char *warm = end + 1;
                    sopt.warmupCycles = std::strtoull(warm, &end, 0);
                    ff_fatal_if(end == warm || *end != '\0' ||
                                    sopt.warmupCycles == 0,
                                "bad --sample value '", v,
                                "' (expected "
                                "INTERVAL[:DETAIL[:WARMUP]])");
                }
            } else {
                ff_fatal_if(*end != '\0', "bad --sample value '", v,
                            "' (expected INTERVAL[:DETAIL[:WARMUP]])");
            }
            ff_fatal_if(sopt.intervalCycles == 0,
                        "--sample needs a positive interval");
        } else if (n == "--cq") {
            cfg.couplingQueueSize = num();
        } else if (n == "--alat") {
            cfg.alatCapacity = num();
        } else if (n == "--feedback") {
            if (v == "off")
                cfg.feedbackEnabled = false;
            else
                cfg.feedbackLatency = num();
        } else if (n == "--prefetch") {
            cfg.mem.prefetchDegree = num();
        } else if (n == "--mem-lat") {
            cfg.mem.memoryLatency = num();
        } else if (n == "--throttle") {
            cfg.aPipeThrottlePercent = num();
        } else if (n == "--predictor") {
            if (v == "gshare")
                cfg.predictorKind = branch::PredictorKind::kGshare;
            else if (v == "bimodal")
                cfg.predictorKind = branch::PredictorKind::kBimodal;
            else if (v == "tournament")
                cfg.predictorKind = branch::PredictorKind::kTournament;
            else
                ff_fatal("unknown predictor '", v, "'");
        } else if (n == "--no-fp-units") {
            cfg.aPipeHasFpUnits = false;
        } else {
            // A table entry without a dispatch arm is a bug caught
            // by the cli_help_check drift test.
            ff_fatal("flag ", n, " is in the table but unhandled");
        }
    }
    if (path.empty() == workload.empty())
        usage(argv[0], 2); // exactly one program source

    sim::MetricsOptions mopt;
    // Sampled runs estimate aggregate time from replayed windows;
    // per-cycle observers (profile/telemetry/pipeview), statistics
    // dumps and traces all need one full detailed run. --metrics-out
    // stays legal with --sample: the document then carries the
    // "sampled" estimator section instead of profile/telemetry data.
    ff_fatal_if(sopt.enabled() &&
                    (do_stats || do_trace || do_profile ||
                     do_pipeview || !trace_out.empty()),
                "--sample is incompatible with --stats/--trace/"
                "--profile/--pipeview/--trace-out (those need a full "
                "detailed run)");
    mopt.profile =
        do_profile || (!metrics_out.empty() && !sopt.enabled());
    mopt.telemetry = !metrics_out.empty() && !sopt.enabled();
    mopt.pipeview = do_pipeview || !trace_out.empty();
    ff_fatal_if((mopt.enabled() || sopt.enabled()) &&
                    model == "functional",
                "--profile/--metrics-out/--pipeview/--trace-out/"
                "--sample need a timed model (--model "
                "base|2P|2Pre|runahead)");
    if (model.empty()) {
        // Metrics only exist on timed models, so asking for them
        // picks the paper's machine rather than dying on the
        // functional default; --sample follows the same convention.
        model = mopt.enabled() || sopt.enabled() ? "2P" : "functional";
        if (sopt.enabled())
            std::fprintf(stderr, "note: --sample without --model: "
                                 "using the two-pass model (2P)\n");
        else if (mopt.enabled())
            std::fprintf(stderr,
                         "note: --profile/--metrics-out/--pipeview/"
                         "--trace-out without --model: using the "
                         "two-pass model (2P)\n");
    }
    if (!trace_out.empty()) {
        // Start the engine recorder before program build so workload
        // construction and verification land on the timeline too.
        engine::laneName("main");
        engine::traceEnable();
    }

    isa::Program prog;
    if (!workload.empty()) {
        // Bundled workloads arrive already scheduled for the Table 1
        // widths; --schedule would be redundant but stays legal.
        prog = workloads::buildWorkload(workload, scale).program;
        path = workload;
    } else {
        std::ifstream in(path);
        ff_fatal_if(!in, "cannot open '", path, "'");
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string err = isa::assemble(buf.str(), path, &prog);
        ff_fatal_if(!err.empty(), path, ": ", err);
    }

    if (do_schedule) {
        // The scheduler owns group formation: flatten whatever stop
        // bits the source carried and re-pack under the machine's
        // widths. The alias oracle prunes provably independent
        // memory-ordering constraints first when asked.
        if (sched_alias)
            prog = analysis::scheduleWithAlias(isa::sequentialize(prog));
        else
            prog = compiler::schedule(isa::sequentialize(prog));
    }
    if (do_verify) {
        analysis::CheckOptions copts;
        copts.limits = cfg.limits;
        const analysis::Report rep = analysis::check(prog, copts);
        const std::string text = analysis::render(rep, path);
        if (!text.empty())
            std::fputs(text.c_str(), stderr);
        if (!rep.clean(verify_strict)) {
            std::fprintf(stderr,
                         "%s: verification failed (%u errors, "
                         "%u warnings)%s\n",
                         path.c_str(), rep.errors(), rep.warnings(),
                         do_schedule ? ""
                                     : " (hint: --schedule forms "
                                       "legal issue groups)");
            return 1;
        }
    }
    {
        const std::string verr = prog.validate(cfg.limits);
        ff_fatal_if(!verr.empty(), path, ": ", verr,
                    do_schedule ? ""
                                : " (hint: try --schedule to form "
                                  "legal issue groups)");
    }

    if (do_disasm) {
        std::printf("%s", isa::disasmProgram(prog).c_str());
        return 0;
    }

    if (model == "functional") {
        cpu::FunctionalCpu cpu(prog);
        const auto r = cpu.run();
        std::printf("halted=%d instructions=%llu groups=%llu "
                    "branches=%llu loads=%llu stores=%llu\n",
                    r.halted ? 1 : 0,
                    static_cast<unsigned long long>(r.instsExecuted),
                    static_cast<unsigned long long>(r.groupsExecuted),
                    static_cast<unsigned long long>(
                        r.branchesExecuted),
                    static_cast<unsigned long long>(r.loadsExecuted),
                    static_cast<unsigned long long>(r.storesExecuted));
        std::printf("checksum[0x100]=%llu\n",
                    static_cast<unsigned long long>(
                        cpu.mem().read64(0x100)));
        return r.halted ? 0 : 1;
    }

    sim::CpuKind kind;
    if (model == "base")
        kind = sim::CpuKind::kBaseline;
    else if (model == "2P")
        kind = sim::CpuKind::kTwoPass;
    else if (model == "2Pre")
        kind = sim::CpuKind::kTwoPassRegroup;
    else if (model == "runahead")
        kind = sim::CpuKind::kRunahead;
    else
        ff_fatal("unknown model '", model, "'");

    if (sopt.enabled()) {
        sim::SimJob job;
        job.program = &prog;
        job.kind = kind;
        job.cfg = cfg;
        job.maxCycles = max_cycles;
        job.sampled = sopt;
        const sim::SimOutcome out = sim::simulateCached(job);
        ff_fatal_if(out.sampled == nullptr,
                    "sampled run returned no estimate");
        const sim::SampledEstimate &e = *out.sampled;
        std::printf("model=%s sampled halted=%d cycles~%llu "
                    "instructions=%llu ipc=%.3f +/- %.3f (95%% CI)\n",
                    model.c_str(), out.run.halted ? 1 : 0,
                    static_cast<unsigned long long>(out.run.cycles),
                    static_cast<unsigned long long>(
                        out.run.instsRetired),
                    e.ipcMean, e.ipcCi95);
        std::printf(
            "sampling: intervals=%llu measured=%llu spacing=%llu "
            "detail=%llu warmup=%llu coverage=%.1f%%\n",
            static_cast<unsigned long long>(e.intervalsTotal),
            static_cast<unsigned long long>(e.intervalsMeasured),
            static_cast<unsigned long long>(e.spacing),
            static_cast<unsigned long long>(e.options.detailCycles),
            static_cast<unsigned long long>(e.options.warmupCycles),
            e.totalInsts == 0
                ? 0.0
                : 100.0 * static_cast<double>(e.sampledInsts) /
                      static_cast<double>(e.totalInsts));
        std::printf("stalls: %s\n", out.cycles.render().c_str());
        std::printf("checksum[0x100]=%llu\n",
                    static_cast<unsigned long long>(out.checksum));
        if (!metrics_out.empty()) {
            std::ofstream mf(metrics_out);
            ff_fatal_if(!mf, "cannot write '", metrics_out, "'");
            mf << sim::metricsToJson(out, cfg, path);
            std::printf("metrics: wrote %s\n", metrics_out.c_str());
        }
        if (sim::resultCacheEnabled()) {
            const sim::ResultCacheStats cs = sim::resultCacheStats();
            std::printf("cache: hits=%llu misses=%llu\n",
                        static_cast<unsigned long long>(cs.hits),
                        static_cast<unsigned long long>(cs.misses));
        }
        return out.run.halted ? 0 : 1;
    }

    // A plain timed run (no stats dump, trace, or metrics — nothing
    // that needs the live model) can be answered from the result
    // cache; a miss simulates and backfills it.
    if (!do_stats && !do_trace && !mopt.enabled()) {
        sim::SimJob job;
        job.program = &prog;
        job.kind = kind;
        job.cfg = cfg;
        job.maxCycles = max_cycles;
        const sim::SimOutcome out = sim::simulateCached(job);
        std::printf("model=%s halted=%d cycles=%llu "
                    "instructions=%llu ipc=%.3f\n",
                    model.c_str(), out.run.halted ? 1 : 0,
                    static_cast<unsigned long long>(out.run.cycles),
                    static_cast<unsigned long long>(
                        out.run.instsRetired),
                    out.run.ipc());
        std::printf("stalls: %s\n", out.cycles.render().c_str());
        std::printf("checksum[0x100]=%llu\n",
                    static_cast<unsigned long long>(out.checksum));
        if (sim::resultCacheEnabled()) {
            const sim::ResultCacheStats cs = sim::resultCacheStats();
            std::printf("cache: hits=%llu misses=%llu\n",
                        static_cast<unsigned long long>(cs.hits),
                        static_cast<unsigned long long>(cs.misses));
        }
        return out.run.halted ? 0 : 1;
    }

    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, prog, cfg);
    sim::MetricsSession session(prog, cfg, mopt);
    session.attach(*m);
    cpu::RunResult r;
    {
        engine::ScopedSpan run_span("run");
        r = m->run(max_cycles);
    }
    std::printf("model=%s halted=%d cycles=%llu instructions=%llu "
                "ipc=%.3f\n",
                model.c_str(), r.halted ? 1 : 0,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instsRetired),
                r.ipc());
    std::printf("stalls: %s\n",
                m->cycleAccounting().render().c_str());
    std::printf("checksum[0x100]=%llu\n",
                static_cast<unsigned long long>(
                    m->memState().read64(0x100)));
    if (do_stats)
        std::printf("\n%s", m->statsReport().c_str());

    if (session.attached()) {
        sim::SimOutcome out = sim::collectOutcome(*m, kind, r);
        sim::MetricsRecord rec = session.harvest();
        std::vector<cpu::PipeEvent> pipe_events =
            std::move(rec.pipeEvents);
        const std::uint64_t pipe_dropped = rec.pipeDropped;
        out.metrics = std::make_shared<const sim::MetricsRecord>(
            std::move(rec));
        if (do_profile) {
            std::printf("\nstall attribution (top %u)\n%s",
                        profile_k,
                        sim::renderProfileTable(*out.metrics,
                                                profile_k)
                            .c_str());
        }
        if (!metrics_out.empty()) {
            std::ofstream mf(metrics_out);
            ff_fatal_if(!mf, "cannot write '", metrics_out, "'");
            mf << sim::metricsToJson(out, cfg, path);
            std::printf("metrics: wrote %s\n", metrics_out.c_str());
        }
        if (mopt.pipeview) {
            sim::PipeTrace pt = sim::buildPipeTrace(
                prog, cfg, kind, r.cycles, std::move(pipe_events),
                pipe_dropped, path);
            if (!trace_out.empty()) {
                pt.engine = engine::traceStop();
                const std::vector<std::uint8_t> bytes =
                    sim::encodePipeTrace(pt);
                std::ofstream tf(trace_out, std::ios::binary);
                ff_fatal_if(!tf, "cannot write '", trace_out, "'");
                tf.write(reinterpret_cast<const char *>(bytes.data()),
                         static_cast<std::streamsize>(bytes.size()));
                std::printf("trace: wrote %s (%llu events, %llu "
                            "engine spans)\n",
                            trace_out.c_str(),
                            static_cast<unsigned long long>(
                                pt.events.size()),
                            static_cast<unsigned long long>(
                                pt.engine.spans.size()));
            }
            if (do_pipeview) {
                std::printf("\n%s",
                            sim::renderPipeView(pt, pipeview_rows)
                                .c_str());
            }
        }
    }
    return r.halted ? 0 : 1;
}
