/**
 * @file
 * ffvm — the command-line simulator driver. Assembles an ffvm .s
 * file (or builds a bundled workload), optionally runs the
 * issue-group scheduler over it, executes it on a chosen CPU model,
 * and reports results.
 *
 *   ffvm program.s                         # functional execution
 *   ffvm program.s --model 2P --schedule   # two-pass, compiler-packed
 *   ffvm program.s --model base --stats    # full statistics dump
 *   ffvm program.s --disasm                # just show the program
 *   ffvm --workload 181.mcf --model 2P --stats   # bundled benchmark
 *
 * Options (value options accept "--opt VALUE" and "--opt=VALUE"):
 *   --model functional|base|2P|2Pre|runahead   (default functional,
 *                        or 2P when --profile/--metrics-out is given)
 *   --workload NAME      simulate a bundled Table 2 workload instead
 *                        of assembling a .s file
 *   --scale P            workload scale percent (default 10)
 *   --schedule           run the list scheduler (issue-group packing)
 *   --disasm             print the (scheduled) program and exit
 *   --stats              print the model's full statistics dump
 *   --trace CATS         comma list: fetch,issue,exec,mem,branch,
 *                        apipe,bpipe,flush,feedback,all
 *   --max-cycles N       simulation budget (default 400M)
 *   --cq N               coupling queue entries
 *   --alat N             ALAT capacity (0 = perfect)
 *   --feedback N|off     B->A feedback latency
 *   --prefetch N         next-line prefetch degree
 *   --mem-lat N          main memory latency
 *   --throttle P         A-pipe deferral throttle percent
 *   --predictor K        gshare|bimodal|tournament
 *   --no-fp-units        A-pipe without FP units (Sec. 3.7)
 *   --regroup            dynamic regrouping on the two-pass models
 *   --verify[=strict]    run the ffcheck static verifier before
 *                        simulating; strict also fails on warnings
 *   --profile[=K]        per-instruction stall attribution; prints
 *                        the top K rows (default 20, 0 = all)
 *   --metrics-out FILE   write the versioned JSON metrics record
 *                        (implies profile + telemetry collection)
 *   --help               print usage and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ffcheck.hh"
#include "common/trace.hh"
#include "compiler/scheduler.hh"
#include "cpu/functional/functional_cpu.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s <program.s> [--model "
                 "functional|base|2P|2Pre|runahead] "
                 "[--workload NAME] [--scale P] [--schedule] "
                 "[--disasm] [--stats] [--trace cats] "
                 "[--max-cycles N] [--cq N] [--alat N] "
                 "[--feedback N|off] [--prefetch N] [--mem-lat N] "
                 "[--throttle P] [--predictor K] [--no-fp-units] "
                 "[--regroup] [--verify[=strict]] [--profile[=K]] "
                 "[--metrics-out FILE] [--help]\n"
                 "value options accept --opt VALUE and --opt=VALUE\n",
                 argv0);
    std::exit(exit_code);
}

std::uint32_t
traceMask(const std::string &cats)
{
    std::uint32_t mask = 0;
    std::istringstream in(cats);
    std::string tok;
    while (std::getline(in, tok, ',')) {
        if (tok == "fetch") mask |= trace::kFetch;
        else if (tok == "issue") mask |= trace::kIssue;
        else if (tok == "exec") mask |= trace::kExec;
        else if (tok == "mem") mask |= trace::kMem;
        else if (tok == "branch") mask |= trace::kBranch;
        else if (tok == "apipe") mask |= trace::kApipe;
        else if (tok == "bpipe") mask |= trace::kBpipe;
        else if (tok == "flush") mask |= trace::kFlush;
        else if (tok == "feedback") mask |= trace::kFeedback;
        else if (tok == "all") mask |= trace::kAll;
        else
            ff_fatal("unknown trace category '", tok, "'");
    }
    return mask;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0], 2);

    std::string path;
    std::string workload;
    int scale = 10;
    std::string model;
    bool do_schedule = false, do_disasm = false, do_stats = false;
    bool do_verify = false, verify_strict = false;
    bool do_profile = false;
    unsigned profile_k = 20;
    std::string metrics_out;
    std::uint64_t max_cycles = sim::kDefaultMaxCycles;
    cpu::CoreConfig cfg = sim::table1Config();

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        // Matches "--name VALUE" and "--name=VALUE"; leaves v filled.
        std::string v;
        auto opt = [&](const char *name) -> bool {
            const std::size_t n = std::strlen(name);
            if (a == name) {
                if (i + 1 >= argc)
                    usage(argv[0], 2);
                v = argv[++i];
                return true;
            }
            if (a.size() > n + 1 && a.compare(0, n, name) == 0 &&
                a[n] == '=') {
                v = a.substr(n + 1);
                return true;
            }
            return false;
        };
        auto num = [&]() -> unsigned {
            return static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 0));
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0], 0);
        } else if (opt("--model")) {
            model = v;
        } else if (opt("--workload")) {
            workload = v;
        } else if (opt("--scale")) {
            scale = static_cast<int>(
                std::strtol(v.c_str(), nullptr, 0));
        } else if (a == "--schedule") {
            do_schedule = true;
        } else if (a == "--disasm") {
            do_disasm = true;
        } else if (a == "--stats") {
            do_stats = true;
        } else if (a == "--regroup") {
            cfg.regroup = true;
        } else if (a == "--verify") {
            do_verify = true;
        } else if (a == "--verify=strict") {
            do_verify = true;
            verify_strict = true;
        } else if (a == "--profile") {
            do_profile = true;
        } else if (opt("--profile")) {
            do_profile = true;
            profile_k = num();
        } else if (opt("--metrics-out")) {
            metrics_out = v;
        } else if (opt("--trace")) {
            trace::enable(traceMask(v));
        } else if (opt("--max-cycles")) {
            max_cycles = std::strtoull(v.c_str(), nullptr, 0);
        } else if (opt("--cq")) {
            cfg.couplingQueueSize = num();
        } else if (opt("--alat")) {
            cfg.alatCapacity = num();
        } else if (opt("--feedback")) {
            if (v == "off")
                cfg.feedbackEnabled = false;
            else
                cfg.feedbackLatency = num();
        } else if (opt("--prefetch")) {
            cfg.mem.prefetchDegree = num();
        } else if (opt("--mem-lat")) {
            cfg.mem.memoryLatency = num();
        } else if (opt("--throttle")) {
            cfg.aPipeThrottlePercent = num();
        } else if (opt("--predictor")) {
            if (v == "gshare")
                cfg.predictorKind = branch::PredictorKind::kGshare;
            else if (v == "bimodal")
                cfg.predictorKind = branch::PredictorKind::kBimodal;
            else if (v == "tournament")
                cfg.predictorKind = branch::PredictorKind::kTournament;
            else
                ff_fatal("unknown predictor '", v, "'");
        } else if (a == "--no-fp-units") {
            cfg.aPipeHasFpUnits = false;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(argv[0], 2);
        } else if (path.empty()) {
            path = a;
        } else {
            usage(argv[0], 2);
        }
    }
    if (path.empty() == workload.empty())
        usage(argv[0], 2); // exactly one program source

    sim::MetricsOptions mopt;
    mopt.profile = do_profile || !metrics_out.empty();
    mopt.telemetry = !metrics_out.empty();
    ff_fatal_if(mopt.enabled() && model == "functional",
                "--profile/--metrics-out need a timed model "
                "(--model base|2P|2Pre|runahead)");
    if (model.empty()) {
        // Metrics only exist on timed models, so asking for them
        // picks the paper's machine rather than dying on the
        // functional default.
        model = mopt.enabled() ? "2P" : "functional";
        if (mopt.enabled())
            std::fprintf(stderr,
                         "note: --profile/--metrics-out without "
                         "--model: using the two-pass model (2P)\n");
    }

    isa::Program prog;
    if (!workload.empty()) {
        // Bundled workloads arrive already scheduled for the Table 1
        // widths; --schedule would be redundant but stays legal.
        prog = workloads::buildWorkload(workload, scale).program;
        path = workload;
    } else {
        std::ifstream in(path);
        ff_fatal_if(!in, "cannot open '", path, "'");
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string err = isa::assemble(buf.str(), path, &prog);
        ff_fatal_if(!err.empty(), path, ": ", err);
    }

    if (do_schedule) {
        // The scheduler owns group formation: flatten whatever stop
        // bits the source carried and re-pack under the machine's
        // widths.
        prog = compiler::schedule(isa::sequentialize(prog));
    }
    if (do_verify) {
        analysis::CheckOptions copts;
        copts.limits = cfg.limits;
        const analysis::Report rep = analysis::check(prog, copts);
        const std::string text = analysis::render(rep, path);
        if (!text.empty())
            std::fputs(text.c_str(), stderr);
        if (!rep.clean(verify_strict)) {
            std::fprintf(stderr,
                         "%s: verification failed (%u errors, "
                         "%u warnings)%s\n",
                         path.c_str(), rep.errors(), rep.warnings(),
                         do_schedule ? ""
                                     : " (hint: --schedule forms "
                                       "legal issue groups)");
            return 1;
        }
    }
    {
        const std::string verr = prog.validate(cfg.limits);
        ff_fatal_if(!verr.empty(), path, ": ", verr,
                    do_schedule ? ""
                                : " (hint: try --schedule to form "
                                  "legal issue groups)");
    }

    if (do_disasm) {
        std::printf("%s", isa::disasmProgram(prog).c_str());
        return 0;
    }

    if (model == "functional") {
        cpu::FunctionalCpu cpu(prog);
        const auto r = cpu.run();
        std::printf("halted=%d instructions=%llu groups=%llu "
                    "branches=%llu loads=%llu stores=%llu\n",
                    r.halted ? 1 : 0,
                    static_cast<unsigned long long>(r.instsExecuted),
                    static_cast<unsigned long long>(r.groupsExecuted),
                    static_cast<unsigned long long>(
                        r.branchesExecuted),
                    static_cast<unsigned long long>(r.loadsExecuted),
                    static_cast<unsigned long long>(r.storesExecuted));
        std::printf("checksum[0x100]=%llu\n",
                    static_cast<unsigned long long>(
                        cpu.mem().read64(0x100)));
        return r.halted ? 0 : 1;
    }

    sim::CpuKind kind;
    if (model == "base")
        kind = sim::CpuKind::kBaseline;
    else if (model == "2P")
        kind = sim::CpuKind::kTwoPass;
    else if (model == "2Pre")
        kind = sim::CpuKind::kTwoPassRegroup;
    else if (model == "runahead")
        kind = sim::CpuKind::kRunahead;
    else
        ff_fatal("unknown model '", model, "'");

    const std::unique_ptr<cpu::CpuModel> m =
        cpu::makeModel(kind, prog, cfg);
    sim::MetricsSession session(prog, cfg, mopt);
    session.attach(*m);
    const cpu::RunResult r = m->run(max_cycles);
    std::printf("model=%s halted=%d cycles=%llu instructions=%llu "
                "ipc=%.3f\n",
                model.c_str(), r.halted ? 1 : 0,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instsRetired),
                r.ipc());
    std::printf("stalls: %s\n",
                m->cycleAccounting().render().c_str());
    std::printf("checksum[0x100]=%llu\n",
                static_cast<unsigned long long>(
                    m->memState().read64(0x100)));
    if (do_stats)
        std::printf("\n%s", m->statsReport().c_str());

    if (session.attached()) {
        sim::SimOutcome out = sim::collectOutcome(*m, kind, r);
        out.metrics = std::make_shared<const sim::MetricsRecord>(
            session.harvest());
        if (do_profile) {
            std::printf("\nstall attribution (top %u)\n%s",
                        profile_k,
                        sim::renderProfileTable(*out.metrics,
                                                profile_k)
                            .c_str());
        }
        if (!metrics_out.empty()) {
            std::ofstream mf(metrics_out);
            ff_fatal_if(!mf, "cannot write '", metrics_out, "'");
            mf << sim::metricsToJson(out, cfg, path);
            std::printf("metrics: wrote %s\n", metrics_out.c_str());
        }
    }
    return r.halted ? 0 : 1;
}
