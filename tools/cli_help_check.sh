#!/usr/bin/env bash
# CLI self-consistency check: every flag ffvm actually parses (the
# machine-readable --dump-flags table is generated from the same
# FlagSpec array the parser dispatches on) must be documented in
# --help, so the help text can never silently fall behind the parser.
#
# Usage: tools/cli_help_check.sh [ffvm-path]
set -euo pipefail

ffvm="${1:-build/tools/ffvm}"

if [ ! -x "$ffvm" ]; then
    echo "cli_help_check: $ffvm is not built" >&2
    exit 1
fi

help_out="$("$ffvm" --help)"
flag_table="$("$ffvm" --dump-flags)"

if [ -z "$flag_table" ]; then
    echo "cli_help_check: FAIL — --dump-flags printed nothing" >&2
    exit 1
fi

fail=0
while IFS=$'\t' read -r name arity metavar; do
    [ -n "$name" ] || continue
    if ! grep -qF -- "$name" <<<"$help_out"; then
        echo "cli_help_check: FAIL — $name ($arity) is in the flag" \
             "table but undocumented in --help" >&2
        fail=1
    fi
    # Every value-taking flag must declare a metavar ("-" marks a
    # switch), and the metavar must show up next to the flag in
    # --help ("--opt VALUE" or "--opt[=VALUE]").
    case "$arity" in
    switch)
        if [ "$metavar" != "-" ]; then
            echo "cli_help_check: FAIL — switch $name carries" \
                 "metavar '$metavar'" >&2
            fail=1
        fi
        ;;
    required|optional)
        if [ -z "$metavar" ] || [ "$metavar" = "-" ]; then
            echo "cli_help_check: FAIL — value flag $name has no" \
                 "metavar" >&2
            fail=1
        elif ! grep -qF -- "$name $metavar" <<<"$help_out" &&
             ! grep -qF -- "$name[=$metavar]" <<<"$help_out"; then
            # Fixed-string match: metavars may contain regex
            # metacharacters (e.g. INTERVAL[:DETAIL[:WARMUP]]).
            echo "cli_help_check: FAIL — $name does not document" \
                 "its $metavar value in --help" >&2
            fail=1
        fi
        ;;
    *)
        echo "cli_help_check: FAIL — $name has unknown arity" \
             "'$arity'" >&2
        fail=1
        ;;
    esac
done <<<"$flag_table"

# The flags users reach for first must be present by name, not just
# via the table round trip.
for must in --workload --cache-dir --model; do
    if ! grep -qF -- "$must" <<<"$help_out"; then
        echo "cli_help_check: FAIL — $must missing from --help" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
n="$(grep -c . <<<"$flag_table")"
echo "cli_help_check: PASS — all $n table flags documented in --help"
