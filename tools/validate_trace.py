#!/usr/bin/env python3
"""Structural validator for the Chrome trace-event JSON that ffview
--json (and the ffpipe exporter underneath it) emits. Stdlib only, so
the CI gate needs nothing beyond python3.

Checks the properties Perfetto and chrome://tracing rely on:
  * the document is one object with a "traceEvents" array;
  * every event carries ph/pid/name, and ts wherever it is required;
  * complete events ("X") carry a non-negative dur;
  * instants ("i") carry a scope in {t, p, g};
  * counters ("C") carry a numeric args payload;
  * every (pid, tid) that hosts events is named by thread_name
    metadata, and every pid by process_name metadata.

Usage: validate_trace.py trace.json [trace2.json ...]
"""

import json
import sys

REQUIRED_TS = {"X", "i", "C"}


def fail(path, msg):
    sys.exit(f"validate_trace: FAIL — {path}: {msg}")


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "document is not an object with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents is not a non-empty array")

    named_threads = set()
    named_processes = set()
    used_threads = set()
    counts = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(path, f"event {i} is not an object")
        for k in ("ph", "pid", "name"):
            if k not in e:
                fail(path, f"event {i} lacks '{k}'")
        ph = e["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph in REQUIRED_TS and not isinstance(e.get("ts"),
                                                (int, float)):
            fail(path, f"event {i} ({ph}) lacks a numeric ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, f"event {i} (X) lacks a non-negative dur")
        if ph == "i" and e.get("s") not in ("t", "p", "g"):
            fail(path, f"event {i} (i) has bad scope {e.get('s')!r}")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float))
                    for v in args.values()):
                fail(path, f"event {i} (C) lacks numeric args")
        if ph == "M":
            if e["name"] == "thread_name":
                named_threads.add((e["pid"], e.get("tid")))
            elif e["name"] == "process_name":
                named_processes.add(e["pid"])
        elif "tid" in e:
            used_threads.add((e["pid"], e["tid"]))

    for pid, tid in sorted(used_threads):
        if (pid, tid) not in named_threads:
            fail(path, f"thread pid={pid} tid={tid} hosts events "
                       "but has no thread_name metadata")
        if pid not in named_processes:
            fail(path, f"pid={pid} has no process_name metadata")

    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"validate_trace: {path}: OK ({summary})")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
