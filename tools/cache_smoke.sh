#!/usr/bin/env bash
# Result-cache smoke: run the Figure-6 sweep twice against a fresh
# temporary cache directory. The first run must populate the cache,
# the second must answer at least 90% of its cells from it, and both
# runs must print bit-identical result tables — a cache hit is only
# correct if it is indistinguishable from re-simulation.
#
# Usage: tools/cache_smoke.sh [bench_fig6-path] [scale-percent]
set -euo pipefail

bench="${1:-build/bench/bench_fig6}"
scale="${2:-10}"
jobs="${FF_JOBS:-$(nproc)}"

if [ ! -x "$bench" ]; then
    echo "cache_smoke: $bench is not built" >&2
    exit 1
fi

cache_dir="$(mktemp -d)"
cold_table="$(mktemp)"
warm_table="$(mktemp)"
cold_json="$(mktemp)"
warm_json="$(mktemp)"
trap 'rm -rf "$cache_dir" "$cold_table" "$warm_table" "$cold_json" \
         "$warm_json"' EXIT

FF_CACHE_DIR="$cache_dir" "$bench" --jobs "$jobs" \
    --json "$cold_json" "$scale" \
    | grep -v '^\[engine\]' > "$cold_table"
FF_CACHE_DIR="$cache_dir" "$bench" --jobs "$jobs" \
    --json "$warm_json" "$scale" \
    | grep -v '^\[engine\]' > "$warm_table"

if ! diff -u "$cold_table" "$warm_table"; then
    echo "cache_smoke: FAIL — cached rerun changed the result tables" \
        >&2
    exit 1
fi

python3 - "$cold_json" "$warm_json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    cold = json.load(f)
with open(sys.argv[2]) as f:
    warm = json.load(f)

if cold["cacheHits"] != 0:
    sys.exit(f"cache_smoke: FAIL — first run against an empty cache "
             f"reported {cold['cacheHits']} hits")
if cold["cacheMisses"] != cold["sims"]:
    sys.exit(f"cache_smoke: FAIL — first run missed "
             f"{cold['cacheMisses']}/{cold['sims']} cells; every cell "
             f"should have been a miss")
floor = 0.9 * warm["sims"]
if warm["cacheHits"] < floor:
    sys.exit(f"cache_smoke: FAIL — second run hit only "
             f"{warm['cacheHits']}/{warm['sims']} cells "
             f"(needs >= 90%)")
print(f"cache_smoke: PASS — {warm['cacheHits']}/{warm['sims']} hits "
      f"on the second run, tables bit-identical")
EOF
