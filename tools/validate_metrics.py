#!/usr/bin/env python3
"""Validate ffvm metrics JSON documents against tools/metrics_schema.json.

Stdlib-only validator for the JSON Schema subset the metrics schema
uses ($ref into #/definitions, type, required, properties,
additionalProperties, items, enum, minimum) so the CI bench-smoke
gate needs no third-party jsonschema package.

Usage: validate_metrics.py [--schema FILE] doc.json [doc2.json ...]
Exits non-zero (listing every violation) if any document fails.
"""

import argparse
import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return isinstance(value, TYPES[name])


class Validator:
    def __init__(self, schema):
        self.root = schema
        self.errors = []

    def resolve(self, ref):
        node = self.root
        assert ref.startswith("#/"), f"unsupported $ref {ref}"
        for part in ref[2:].split("/"):
            node = node[part]
        return node

    def fail(self, path, message):
        self.errors.append(f"{path or '/'}: {message}")

    def check(self, value, schema, path=""):
        if "$ref" in schema:
            self.check(value, self.resolve(schema["$ref"]), path)
            return

        if "type" in schema:
            names = schema["type"]
            if isinstance(names, str):
                names = [names]
            if not any(type_ok(value, n) for n in names):
                self.fail(path, f"expected {'/'.join(names)}, got "
                                f"{type(value).__name__}")
                return

        if "enum" in schema and value not in schema["enum"]:
            self.fail(path, f"{value!r} not in {schema['enum']}")
        if "minimum" in schema and isinstance(value, (int, float)) \
                and not isinstance(value, bool) \
                and value < schema["minimum"]:
            self.fail(path, f"{value} < minimum {schema['minimum']}")

        if isinstance(value, dict):
            for req in schema.get("required", []):
                if req not in value:
                    self.fail(path, f"missing required member "
                                    f"'{req}'")
            props = schema.get("properties", {})
            extra = schema.get("additionalProperties", True)
            for k, v in value.items():
                sub = f"{path}/{k}"
                if k in props:
                    self.check(v, props[k], sub)
                elif extra is False:
                    self.fail(sub, "unexpected member")
                elif isinstance(extra, dict):
                    self.check(v, extra, sub)

        if isinstance(value, list) and "items" in schema:
            for i, v in enumerate(value):
                self.check(v, schema["items"], f"{path}/{i}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "metrics_schema.json"))
    parser.add_argument("documents", nargs="+")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    failed = False
    for doc_path in args.documents:
        try:
            with open(doc_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {doc_path}: {e}")
            failed = True
            continue
        v = Validator(schema)
        v.check(doc, schema)
        if v.errors:
            failed = True
            print(f"FAIL {doc_path}:")
            for err in v.errors:
                print(f"  {err}")
        else:
            print(f"OK   {doc_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
