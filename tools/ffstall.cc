/**
 * @file
 * ffstall — cross-validates the static stall predictor against the
 * in-order baseline simulator. For each program it (1) runs the
 * analytical per-block model (analysis::StallPredictor) at a chosen
 * effective load-use latency, (2) simulates the baseline core with
 * per-instruction profiling enabled, scales each block's predicted
 * bubbles by its measured execution count, and (3) reports predicted
 * vs measured load-stall cycles and the relative error.
 *
 *   ffstall --workloads               # the bundled kernel suite
 *   ffstall prog.s                    # one scheduled .s program
 *   ffstall --load-latency=4 prog.s   # non-default latency model
 *   ffstall --tolerance=15 ...        # fail if |error| exceeds 15%
 *
 * The effective load latency defaults to the L1D hit time from the
 * Table 1 machine; it is the model's one free parameter (raise it to
 * fold in misses). With --tolerance the exit status turns the check
 * into a gate: 0 when every program's prediction lands inside the
 * band, 1 otherwise, 2 on usage errors.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/memdep.hh"
#include "analysis/stallpred.hh"
#include "compiler/scheduler.hh"
#include "cpu/cycle_classes.hh"
#include "isa/assembler.hh"
#include "sim/harness.hh"
#include "sim/machine_config.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workloads] [--scale=N] [--schedule] "
                 "[--sched-alias]\n"
                 "       [--load-latency=L] [--tolerance=PCT] "
                 "<program.s>...\n"
                 "  --workloads       validate over the bundled "
                 "kernel suite\n"
                 "  --scale=N         workload scale (default 25)\n"
                 "  --schedule        schedule .s inputs before "
                 "running\n"
                 "  --sched-alias     schedule with the alias oracle "
                 "(implies --schedule)\n"
                 "  --load-latency=L  effective load-use latency for "
                 "the model\n"
                 "                    (default: the L1D hit time)\n"
                 "  --tolerance=PCT   exit nonzero when the relative "
                 "error of any\n"
                 "                    program exceeds PCT percent\n",
                 argv0);
    std::exit(2);
}

struct Options
{
    bool schedule = false;
    bool schedAlias = false;
    double loadLatency = 0; ///< 0: use the L1D hit time
    double tolerance = -1;  ///< <0: report only, never gate
};

struct Row
{
    std::string name;
    double predicted = 0;
    double measured = 0;

    double
    errorPct() const
    {
        if (measured == 0)
            return predicted == 0 ? 0 : 100.0;
        return 100.0 * (predicted - measured) / measured;
    }
};

/** Predicts and measures one program; appends its row. */
void
validate(const isa::Program &prog, const std::string &name,
         const Options &opt, std::vector<Row> &rows)
{
    const cpu::CoreConfig cfg = sim::table1Config();
    const double lat = opt.loadLatency > 0
                           ? opt.loadLatency
                           : static_cast<double>(cfg.mem.l1d.latency);

    const analysis::Cfg acfg(prog);
    analysis::StallModelOptions mopts;
    mopts.wawStall = cfg.wawStall;
    const analysis::StallPrediction pred =
        analysis::StallPredictor(acfg, mopts).predict(lat);

    sim::MetricsOptions mx;
    mx.profile = true;
    const sim::SimOutcome out = sim::simulate(
        prog, sim::CpuKind::kBaseline, cfg, sim::kDefaultMaxCycles, mx);

    // Execution count per block = retires of its first issue group
    // (the profile attributes retirement to the group leader).
    std::map<InstIdx, std::uint64_t> retires;
    if (out.metrics) {
        for (const sim::MetricsRecord::ProfileRow &r :
             out.metrics->profile)
            retires[r.idx] = r.prof.retires;
    }

    Row row;
    row.name = name;
    for (const analysis::PredictedBlock &b : pred.blocks) {
        auto it = retires.find(b.begin);
        if (it == retires.end())
            continue; // block never executed
        row.predicted +=
            b.loadStall * static_cast<double>(it->second);
    }
    row.measured = static_cast<double>(
        out.cycles.counts[static_cast<unsigned>(
            cpu::CycleClass::kLoadStall)]);
    rows.push_back(row);

    std::printf("%-12s lat=%.1f  predicted=%10.0f  measured=%10.0f"
                "  error=%+6.1f%%\n",
                name.c_str(), lat, row.predicted, row.measured,
                row.errorPct());
}

bool
runFile(const std::string &path, const Options &opt,
        std::vector<Row> &rows)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    isa::Program prog;
    const std::string err = isa::assemble(buf.str(), path, &prog);
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return false;
    }
    if (opt.schedAlias)
        prog = analysis::scheduleWithAlias(isa::sequentialize(prog));
    else if (opt.schedule)
        prog = compiler::schedule(isa::sequentialize(prog));
    validate(prog, path, opt, rows);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool do_workloads = false;
    unsigned scale = 25;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--workloads")
            do_workloads = true;
        else if (a.rfind("--scale=", 0) == 0)
            scale = static_cast<unsigned>(
                std::atoi(a.c_str() + std::strlen("--scale=")));
        else if (a == "--schedule")
            opt.schedule = true;
        else if (a == "--sched-alias")
            opt.schedAlias = opt.schedule = true;
        else if (a.rfind("--load-latency=", 0) == 0)
            opt.loadLatency =
                std::atof(a.c_str() + std::strlen("--load-latency="));
        else if (a.rfind("--tolerance=", 0) == 0)
            opt.tolerance =
                std::atof(a.c_str() + std::strlen("--tolerance="));
        else if (!a.empty() && a[0] == '-')
            usage(argv[0]);
        else
            paths.push_back(a);
    }
    if (paths.empty() && !do_workloads)
        usage(argv[0]);

    std::vector<Row> rows;
    bool io_ok = true;
    if (do_workloads) {
        for (const workloads::Workload &w :
             workloads::buildAllWorkloads(scale))
            validate(w.program, w.name, opt, rows);
    }
    for (const std::string &p : paths)
        io_ok = runFile(p, opt, rows) && io_ok;
    if (!io_ok)
        return 1;

    double worst = 0;
    for (const Row &r : rows)
        worst = std::max(worst, std::abs(r.errorPct()));
    std::printf("worst |error| over %zu program%s: %.1f%%\n",
                rows.size(), rows.size() == 1 ? "" : "s", worst);
    if (opt.tolerance >= 0 && worst > opt.tolerance) {
        std::printf("FAILED: tolerance is %.1f%%\n", opt.tolerance);
        return 1;
    }
    return 0;
}
