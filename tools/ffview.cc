/**
 * @file
 * ffview — offline viewer for ffpipe traces written by
 * `ffvm --trace-out`. Renders the Konata-style ASCII lane diagram by
 * default, exports the Perfetto-loadable Chrome trace-event JSON with
 * --json, and prints a one-screen event inventory with --summary.
 *
 *   ffview trace.ffpipe                    # ASCII lane diagram
 *   ffview trace.ffpipe --rows 64          # more lanes
 *   ffview trace.ffpipe --from 100         # start at dynamic id 100
 *   ffview trace.ffpipe --json out.json    # Perfetto export
 *   ffview trace.ffpipe --summary          # header + event counts
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "sim/pipe_trace.hh"

using namespace ff;

namespace
{

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s <trace.ffpipe> [options]\n\noptions:\n"
        "  --rows N     lanes to render (default 32)\n"
        "  --from ID    first dynamic instruction id (default 1)\n"
        "  --width N    timeline columns per lane (default 64)\n"
        "  --json FILE  write Chrome trace-event JSON (Perfetto)\n"
        "  --summary    print the trace header and event counts\n"
        "  --help       print usage and exit\n",
        argv0);
    std::exit(exit_code);
}

void
printSummary(const sim::PipeTrace &t)
{
    std::printf("model:    %s\n", cpu::cpuKindName(t.kind));
    std::printf("program:  %s\n", t.programName.c_str());
    std::printf("hashes:   program=%016llx config=%016llx\n",
                static_cast<unsigned long long>(t.programHash),
                static_cast<unsigned long long>(t.configHash));
    std::printf("cycles:   %llu\n",
                static_cast<unsigned long long>(t.cycles));
    std::printf("events:   %llu recorded, %llu dropped\n",
                static_cast<unsigned long long>(t.events.size()),
                static_cast<unsigned long long>(t.dropped));

    std::uint64_t byKind[cpu::kNumPipeEventKinds] = {};
    for (const cpu::PipeEvent &e : t.events)
        ++byKind[static_cast<unsigned>(e.kind)];
    for (unsigned k = 0; k < cpu::kNumPipeEventKinds; ++k) {
        std::printf("  %-12s %llu\n",
                    cpu::pipeEventKindName(
                        static_cast<cpu::PipeEventKind>(k)),
                    static_cast<unsigned long long>(byKind[k]));
    }

    const std::vector<sim::PipeLifetime> lives =
        sim::buildPipeLifetimes(t.events);
    std::printf("lifetimes: %llu dynamic instructions over %llu "
                "static\n",
                static_cast<unsigned long long>(lives.size()),
                static_cast<unsigned long long>(t.text.size()));

    std::printf("engine:   %llu spans on %llu lanes\n",
                static_cast<unsigned long long>(t.engine.spans.size()),
                static_cast<unsigned long long>(
                    t.engine.lanes.size()));
    for (std::size_t l = 0; l < t.engine.lanes.size(); ++l) {
        std::uint64_t n = 0;
        for (const engine::TraceSpan &s : t.engine.spans)
            if (s.lane == l)
                ++n;
        std::printf("  %-12s %llu\n", t.engine.lanes[l].c_str(),
                    static_cast<unsigned long long>(n));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string json_out;
    bool summary = false;
    unsigned rows = 32;
    unsigned width = 64;
    std::uint64_t from_id = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0], 0);
        } else if (a == "--rows") {
            rows = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (a == "--from") {
            from_id = std::strtoull(value(), nullptr, 0);
        } else if (a == "--width") {
            width = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (a == "--json") {
            json_out = value();
        } else if (a == "--summary") {
            summary = true;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage(argv[0], 2);
        } else if (path.empty()) {
            path = a;
        } else {
            usage(argv[0], 2);
        }
    }
    if (path.empty())
        usage(argv[0], 2);

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "ffview: cannot open '%s'\n",
                     path.c_str());
        return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    sim::PipeTrace t;
    if (!sim::decodePipeTrace(bytes, t)) {
        std::fprintf(stderr,
                     "ffview: '%s' is not a readable ffpipe trace "
                     "(truncated, corrupt, or a foreign version)\n",
                     path.c_str());
        return 1;
    }

    if (summary) {
        printSummary(t);
        return 0;
    }
    if (!json_out.empty()) {
        std::ofstream jf(json_out);
        if (!jf) {
            std::fprintf(stderr, "ffview: cannot write '%s'\n",
                         json_out.c_str());
            return 1;
        }
        jf << sim::pipeTraceToChromeJson(t);
        std::printf("ffview: wrote %s\n", json_out.c_str());
        return 0;
    }
    std::printf("%s", sim::renderPipeView(t, rows, from_id, width)
                          .c_str());
    return 0;
}
