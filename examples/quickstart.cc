/**
 * @file
 * Quickstart: write a tiny EPIC kernel with the ProgramBuilder, let
 * the compiler's list scheduler form issue groups, then run it on
 * the functional reference, the baseline in-order core, and the
 * flea-flicker two-pass core, and compare.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build
 *               ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/scheduler.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "sim/harness.hh"

using namespace ff;

int
main()
{
    // --- 1. Write a kernel: sum = Σ table[hash(i)] over a table that
    //        lives in the L2 (every probe is a short, unanticipated
    //        miss — exactly what two-pass pipelining absorbs).
    constexpr Addr kTable = 0x1000'0000;
    constexpr std::int64_t kEntries = 16384; // 128 KB
    const auto r = [](unsigned i) { return isa::intReg(i); };
    const auto p = [](unsigned i) { return isa::predReg(i); };

    isa::ProgramBuilder b("quickstart");
    b.movi(r(1), kTable);
    b.movi(r(2), 4000); // iterations
    b.movi(r(3), 12345); // index state
    b.movi(r(31), 0);   // sum

    b.label("loop");
    b.addi(r(3), r(3), 0x9E3779B9);
    b.shri(r(4), r(3), 7);
    b.xor_(r(4), r(4), r(3));
    b.andi(r(4), r(4), kEntries - 1);
    b.shli(r(4), r(4), 3);
    b.add(r(5), r(1), r(4));
    b.ld8(r(6), r(5), 0);          // the probe
    b.add(r(31), r(31), r(6));     // its consumer
    b.subi(r(2), r(2), 1);
    b.cmpi(isa::CmpCond::kGt, p(1), p(2), r(2), 0);
    b.br("loop");
    b.pred(p(1));
    b.movi(r(7), 0x100);
    b.st8(r(7), 0, r(31));
    b.halt();

    isa::Program seq = b.finalize();
    for (std::int64_t e = 0; e < kEntries; ++e)
        seq.poke64(kTable + e * 8, (e * 2654435761u) & 0xFFFF);

    // --- 2. "Compile": pack instructions into EPIC issue groups.
    isa::Program prog = compiler::schedule(seq);
    std::printf("%s\n", isa::disasmProgram(prog).c_str());

    // --- 3. Run on the functional reference and the timed models.
    const sim::FunctionalOutcome ref = sim::runFunctional(prog);
    std::printf("functional: %llu instructions, checksum %llu\n\n",
                static_cast<unsigned long long>(
                    ref.result.instsExecuted),
                static_cast<unsigned long long>(ref.checksum));

    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kTwoPass,
          sim::CpuKind::kTwoPassRegroup}) {
        const sim::SimOutcome o = sim::simulate(prog, kind);
        std::printf("%-5s: %8llu cycles, IPC %.2f, checksum %s, "
                    "stall breakdown: %s\n",
                    sim::cpuKindName(kind),
                    static_cast<unsigned long long>(o.run.cycles),
                    o.run.ipc(),
                    o.checksum == ref.checksum ? "OK" : "MISMATCH",
                    o.cycles.render().c_str());
    }
    return 0;
}
