/**
 * @file
 * Design-space exploration against the public API: how the two-pass
 * advantage on 181.mcf scales with the machine's memory-system
 * parameters — main-memory latency (the paper's "future processors
 * ... more distant from substantial cache storage" conjecture),
 * MSHR count, and coupling-queue depth.
 *
 * Run: ./build/examples/explore_config
 */

#include <cstdio>
#include <vector>

#include "sim/harness.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

using namespace ff;

namespace
{

double
speedup(const isa::Program &prog, const cpu::CoreConfig &cfg)
{
    const sim::SimOutcome base =
        sim::simulate(prog, sim::CpuKind::kBaseline, cfg);
    const sim::SimOutcome twop =
        sim::simulate(prog, sim::CpuKind::kTwoPass, cfg);
    return static_cast<double>(base.run.cycles) /
           static_cast<double>(twop.run.cycles);
}

} // namespace

int
main()
{
    const workloads::Workload w = workloads::buildWorkload("181.mcf", 20);

    std::printf("=== Two-pass speedup on 181.mcf across machine "
                "configurations ===\n\n");

    {
        sim::TextTable t;
        t.header({"memory latency", "2P speedup"});
        for (unsigned lat : {75u, 145u, 220u, 300u, 500u}) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.mem.memoryLatency = lat;
            t.row({std::to_string(lat) + " cycles",
                   sim::fixed(speedup(w.program, cfg), 3)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    {
        sim::TextTable t;
        t.header({"max outstanding loads", "2P speedup"});
        for (unsigned mshrs : {2u, 4u, 8u, 16u, 32u}) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.mem.maxOutstandingLoads = mshrs;
            t.row({std::to_string(mshrs),
                   sim::fixed(speedup(w.program, cfg), 3)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    {
        sim::TextTable t;
        t.header({"coupling queue", "2P speedup"});
        for (unsigned cq : {16u, 32u, 64u, 128u, 256u}) {
            cpu::CoreConfig cfg = sim::table1Config();
            cfg.couplingQueueSize = cq;
            t.row({std::to_string(cq) + " entries",
                   sim::fixed(speedup(w.program, cfg), 3)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("(the paper's conjecture: \"the benefit ... will "
                "further increase for future processors which are "
                "bound to be more distant from substantial cache "
                "storage\" -- the latency sweep tests exactly "
                "that)\n");
    return 0;
}
