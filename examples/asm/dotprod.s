# Dot product of two 512-element vectors that live in the L2:
# every load is one of the paper's "short, ubiquitous" misses.
#
#   ./build/tools/ffvm examples/asm/dotprod.s --schedule --model base
#   ./build/tools/ffvm examples/asm/dotprod.s --schedule --model 2P

movi r1 = 0x100000          # &x
movi r2 = 0x140000          # &y
movi r3 = 512               # n
itof f1 = r0                # sum = 0.0

loop:
ld8 f2 = [r1]
ld8 f3 = [r2]
fmul f4 = f2, f3
fadd f1 = f1, f4
add r1 = r1, 8
add r2 = r2, 8
sub r3 = r3, 1
cmp.gt p1, p2 = r3, 0
(p1) br loop

ftoi r31 = f1
movi r4 = 0x100
st8 [r4] = r31
halt

# A few deterministic input elements (the rest read as zero).
.poke64   0x100000 0x3FF0000000000000   # x[0] = 1.0
.pokedouble 0x100008 2.0
.pokedouble 0x100010 3.0
.pokedouble 0x140000 10.0
.pokedouble 0x140008 20.0
.pokedouble 0x140010 30.0
