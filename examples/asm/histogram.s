# Histogram over a pseudo-random byte stream with a data-dependent
# fast path: counts how two-pass handles read-modify-write probes
# plus an occasionally-mispredicted branch.
#
#   ./build/tools/ffvm examples/asm/histogram.s --schedule --model base
#   ./build/tools/ffvm examples/asm/histogram.s --schedule --model 2P --stats

movi r1 = 0x200000          # &bins (256 x 8B)
movi r3 = 0x5DEECE66D       # stream state
movi r5 = 2000              # samples
movi r31 = 0                # checksum

loop:
add r3 = r3, 0x9E3779B97F4A7C15   # next sample
shr r4 = r3, 33
xor r4 = r4, r3
and r4 = r4, 255            # bin index
shl r4 = r4, 3
add r6 = r1, r4
ld8 r7 = [r6]               # bin load (read-modify-write)
add r7 = r7, 1
st8 [r6] = r7
shr r8 = r3, 51
and r8 = r8, 7
cmp.ne p3, p4 = r8, 0       # 7/8 taken fast path
(p3) br tally
xor r31 = r31, r7           # rare path: audit the bin
add r31 = r31, 13
tally:
add r31 = r31, r4
sub r5 = r5, 1
cmp.gt p1, p2 = r5, 0
(p1) br loop

movi r9 = 0x100
st8 [r9] = r31
halt
