/**
 * @file
 * The Figure 1 / Figure 4 case study: watch the two-pass machine
 * execute the mcf-style loop cycle by cycle. Prints the scheduled
 * loop, then a short captured pipeline trace showing A-pipe loads
 * starting misses, consumers being deferred into the coupling queue,
 * and the B-pipe merging pre-executed results while deferred work
 * executes behind the miss — the concurrency of Figure 4.
 *
 * Run: ./build/examples/casestudy_mcf
 */

#include <cstdio>

#include "common/trace.hh"
#include "cpu/core/core_base.hh"
#include "cpu/core/trace_observer.hh"
#include "isa/disasm.hh"
#include "sim/harness.hh"
#include "workloads/workload.hh"

using namespace ff;

int
main()
{
    const workloads::Workload w = workloads::buildWorkload("181.mcf", 3);

    std::printf("=== The 181.mcf loop after issue-group scheduling "
                "(';;' = stop bit) ===\n\n%s\n",
                isa::disasmProgram(w.program).c_str());

    // Capture a window of pipeline activity, with a TraceObserver on
    // the core's observer seam counting retires/deferrals alongside.
    trace::enable(trace::kApipe | trace::kBpipe | trace::kBranch |
                  trace::kFlush | trace::kFeedback);
    trace::captureToBuffer(true);
    cpu::TraceObserver observer;
    {
        auto two_pass = cpu::makeModel(cpu::CpuKind::kTwoPass,
                                       w.program, sim::table1Config());
        dynamic_cast<cpu::CoreBase &>(*two_pass)
            .setObserver(&observer);
        two_pass->run(520);
    }
    trace::disable();
    std::string log = trace::takeBuffer();
    trace::captureToBuffer(false);

    std::printf("=== First ~520 cycles of two-pass execution ===\n"
                "(A-LOAD = pre-executed load starting its miss early; "
                "A-DEFER = instruction suppressed to the B-pipe;\n"
                " B-LOAD = deferred load executing at the backup "
                "pipe; FEEDBK = committed result returning to the "
                "A-file)\n\n%s\n",
                log.c_str());
    std::printf("observer: %llu cycles, %llu group retires "
                "(%llu slots), %llu deferrals, %llu flushes\n\n",
                static_cast<unsigned long long>(
                    observer.counts().cycles),
                static_cast<unsigned long long>(
                    observer.counts().groupRetires),
                static_cast<unsigned long long>(
                    observer.counts().slotsRetired),
                static_cast<unsigned long long>(
                    observer.counts().defers),
                static_cast<unsigned long long>(
                    observer.counts().flushes));

    // And the quantitative punchline of the case study.
    const sim::SimOutcome base =
        sim::simulate(w.program, sim::CpuKind::kBaseline);
    const sim::SimOutcome twop =
        sim::simulate(w.program, sim::CpuKind::kTwoPass);
    std::printf("=== Outcome ===\nbaseline: %llu cycles\n2P:       "
                "%llu cycles  (%.2fx; loads started in A: %llu, "
                "in B: %llu)\n",
                static_cast<unsigned long long>(base.run.cycles),
                static_cast<unsigned long long>(twop.run.cycles),
                static_cast<double>(base.run.cycles) /
                    static_cast<double>(twop.run.cycles),
                static_cast<unsigned long long>(twop.twopass.loadsInA),
                static_cast<unsigned long long>(twop.twopass.loadsInB));
    return 0;
}
