/**
 * @file
 * Building a custom workload against the public API: a predicated
 * binary-search kernel with data-dependent control, demonstrating
 * the full pipeline from ProgramBuilder through the scheduler to a
 * cross-model comparison — the workflow for anyone adding their own
 * benchmark to the suite.
 *
 * Run: ./build/examples/custom_workload
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "compiler/scheduler.hh"
#include "isa/builder.hh"
#include "sim/harness.hh"
#include "sim/report.hh"

using namespace ff;

int
main()
{
    // Sorted table of 64K keys (512 KB -> L2/L3 territory); the
    // kernel binary-searches pseudo-random probes against it. Each
    // search step's address depends on the previous comparison: a
    // dependent-load chain with data-dependent predication.
    constexpr Addr kKeys = 0x1000'0000;
    constexpr std::int64_t kN = 65536;
    constexpr int kProbes = 1500;

    const auto r = [](unsigned i) { return isa::intReg(i); };
    const auto p = [](unsigned i) { return isa::predReg(i); };

    isa::ProgramBuilder b("binsearch");
    b.movi(r(1), kKeys);
    b.movi(r(2), kProbes);
    b.movi(r(3), 77);
    b.movi(r(31), 0);

    b.label("probe");
    // Next probe value.
    b.addi(r(3), r(3), static_cast<std::int64_t>(0x9E3779B97F4A7C15ULL));
    b.shri(r(4), r(3), 30);
    b.andi(r(4), r(4), (1 << 20) - 1); // target key
    b.movi(r(10), 0);                  // lo
    b.movi(r(11), kN);                 // hi
    b.movi(r(12), 16);                 // 16 halving steps

    b.label("step");
    b.add(r(13), r(10), r(11));
    b.shri(r(13), r(13), 1); // mid
    b.shli(r(14), r(13), 3);
    b.add(r(15), r(1), r(14));
    b.ld8(r(16), r(15), 0); // keys[mid] -- dependent load
    b.cmp(isa::CmpCond::kLt, p(1), p(2), r(16), r(4));
    b.addi(r(10), r(13), 1);
    b.pred(p(1)); // lo = mid+1 when keys[mid] < target
    b.mov(r(11), r(13));
    b.pred(p(2)); // hi = mid otherwise
    b.subi(r(12), r(12), 1);
    b.cmpi(isa::CmpCond::kGt, p(3), p(4), r(12), 0);
    b.br("step");
    b.pred(p(3));

    b.add(r(31), r(31), r(10)); // fold the found slot into the sum
    b.subi(r(2), r(2), 1);
    b.cmpi(isa::CmpCond::kGt, p(5), p(6), r(2), 0);
    b.br("probe");
    b.pred(p(5));

    b.movi(r(7), 0x100);
    b.st8(r(7), 0, r(31));
    b.halt();

    isa::Program seq = b.finalize();
    // Sorted keys with random gaps.
    Rng rng(0xB135EA7C);
    std::uint64_t key = 0;
    for (std::int64_t i = 0; i < kN; ++i) {
        key += rng.nextBelow(31) + 1;
        seq.poke64(kKeys + i * 8, key);
    }

    const isa::Program prog = compiler::schedule(seq);
    const sim::FunctionalOutcome ref = sim::runFunctional(prog);

    std::printf("binary search over %lld keys, %d probes, %llu "
                "instructions, checksum %llu\n\n",
                static_cast<long long>(kN), kProbes,
                static_cast<unsigned long long>(
                    ref.result.instsExecuted),
                static_cast<unsigned long long>(ref.checksum));

    sim::TextTable t;
    t.header({"model", "cycles", "IPC", "vs base", "checksum"});
    double base_cycles = 0.0;
    for (sim::CpuKind kind :
         {sim::CpuKind::kBaseline, sim::CpuKind::kRunahead,
          sim::CpuKind::kTwoPass, sim::CpuKind::kTwoPassRegroup}) {
        const sim::SimOutcome o = sim::simulate(prog, kind);
        if (kind == sim::CpuKind::kBaseline)
            base_cycles = static_cast<double>(o.run.cycles);
        t.row({sim::cpuKindName(kind), std::to_string(o.run.cycles),
               sim::fixed(o.run.ipc(), 2),
               sim::fixed(base_cycles /
                              static_cast<double>(o.run.cycles),
                          3),
               o.checksum == ref.checksum ? "OK" : "MISMATCH"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(a dependent-load chain: like 254.gap, most of "
                "the latency is initiated at the B-pipe, so the "
                "two-pass gain is modest)\n");
    return 0;
}
